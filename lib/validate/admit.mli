(** The composed admission gate, cheapest stage first: static bounds
    verification ({!Analysis.Verify}) — interval arithmetic over the
    coordinate expressions, no tensor ever allocated — then resource
    budgets ({!Budget}) — pure pGraph arithmetic — then differential
    validation ({!Differential}) for candidates that survive both.

    The gate has the exact shape [Search.Mcts] expects for its [?admit]
    hook, and keeps thread-safe running statistics (calls, rejections
    per stage, wall-clock spent) so benches can report validator
    overhead. *)

type t

type stats = {
  calls : int;  (** candidates gated *)
  rejected : int;  (** candidates refused admission (all stages) *)
  rejected_static : int;  (** refused by static bounds verification *)
  rejected_budget : int;  (** refused by resource budgets *)
  rejected_differential : int;  (** refused by differential validation *)
  seconds : float;  (** total wall-clock spent inside the gate *)
}

val create :
  ?static:Shape.Valuation.t list ->
  ?max_bytes:int ->
  ?max_flops:int ->
  ?valuations:Shape.Valuation.t list ->
  ?differential:Differential.config ->
  ?check_valuations:Shape.Valuation.t list ->
  unit ->
  t
(** [static] valuations drive the interval verifier (empty — the
    default — disables the static stage; valuations where the operator
    is not instantiable are skipped, mirroring the differential gate's
    skip rule).  Budgets are enforced under [valuations] (the search
    valuations, where evaluation would actually allocate);
    differential validation runs under [check_valuations] (defaulting
    to [valuations] — pass a smaller valuation list to keep the
    validator cheap). *)

val active : t -> bool
(** Whether the gate can ever reject (the static verifier, some
    budget, or the differential validator is configured with a
    non-empty valuation list). *)

val gate : t -> Pgraph.Graph.operator -> (unit, Robust.Guard.kind) result
(** Run the gate on one candidate, recording stats.  Thread-safe.
    Static violations surface as [Guard.Static_violation]. *)

val stats : t -> stats
