module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Flops = Pgraph.Flops
module Guard = Robust.Guard

type estimate = {
  est_bytes : int;
  est_flops : int;
  est_gather_elems : int;
}

let bytes_per_elem = 8

(* The dominant intermediate of the einsum lowering is the gathered
   operand indexed by every output iterator and every reduction
   iterator at once: output_elems * reduction_elems entries.  The
   staged executor materializes strictly smaller partial tensors, so
   this is a safe (conservative) peak for every backend. *)
let estimate op valuation =
  let inp = Flops.input_elems op valuation in
  let out = Flops.output_elems op valuation in
  let prm = Flops.params op valuation in
  let red = Flops.reduction_elems op valuation in
  let gather = out * red in
  {
    est_bytes = bytes_per_elem * (inp + out + prm + gather);
    est_flops = Flops.naive_flops op valuation;
    est_gather_elems = gather;
  }

let check ?max_bytes ?max_flops op valuation =
  match estimate op valuation with
  | exception Failure msg -> Error (Guard.Eval_error ("budget: " ^ msg))
  | est -> (
      let over what used limit =
        Error
          (Guard.Over_budget
             (Printf.sprintf "%s: estimated %d > budget %d" what used limit))
      in
      match (max_bytes, max_flops) with
      | Some b, _ when est.est_bytes > b -> over "bytes" est.est_bytes b
      | _, Some f when est.est_flops > f -> over "flops" est.est_flops f
      | _ -> Ok est)

let admit ?max_bytes ?max_flops op valuations =
  let rec go = function
    | [] -> Ok ()
    | v :: rest -> (
        match check ?max_bytes ?max_flops op v with
        | Ok _ -> go rest
        | Error _ as e -> e)
  in
  go valuations
