module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Flops = Pgraph.Flops
module Guard = Robust.Guard

type estimate = {
  est_bytes : int;
  est_flops : int;
  est_gather_elems : int;
}

let bytes_per_elem = 8

(* Both numbers come straight from [Pgraph.Flops] — the peak already
   includes the gathered einsum operand — so this estimator cannot
   drift from the cost model the search and lint pass reason with
   ([Analysis.Lint] recomputes the same quantities independently and
   cross-checks). *)
let estimate op valuation =
  {
    est_bytes = bytes_per_elem * Flops.peak_footprint op valuation;
    est_flops = Flops.naive_flops op valuation;
    est_gather_elems = Flops.gather_elems op valuation;
  }

let check ?max_bytes ?max_flops op valuation =
  match estimate op valuation with
  | exception Failure msg -> Error (Guard.Eval_error ("budget: " ^ msg))
  | est -> (
      let over what used limit =
        Error
          (Guard.Over_budget
             (Printf.sprintf "%s: estimated %d > budget %d" what used limit))
      in
      match (max_bytes, max_flops) with
      | Some b, _ when est.est_bytes > b -> over "bytes" est.est_bytes b
      | _, Some f when est.est_flops > f -> over "flops" est.est_flops f
      | _ -> Ok est)

let admit ?max_bytes ?max_flops op valuations =
  let rec go = function
    | [] -> Ok ()
    | v :: rest -> (
        match check ?max_bytes ?max_flops op v with
        | Ok _ -> go rest
        | Error _ as e -> e)
  in
  go valuations
