(** Resource-budget admission: reject a candidate from its pGraph cost
    model alone, before any tensor is allocated.

    The estimate is derived purely from [Pgraph.Flops] under a concrete
    valuation; rejecting a candidate therefore never touches
    [Nd.Tensor] (asserted by the allocation probe
    {!Nd.Tensor.allocations} in the test suite and bench). *)

type estimate = {
  est_bytes : int;  (** conservative peak intermediate bytes (float64) *)
  est_flops : int;  (** [Pgraph.Flops.naive_flops] *)
  est_gather_elems : int;
      (** elements of the gathered einsum operand
          (output_elems * reduction_elems), the dominant term *)
}

val bytes_per_elem : int
(** 8: tensors are dense float64. *)

val estimate : Pgraph.Graph.operator -> Shape.Valuation.t -> estimate
(** Raises [Failure] if the operator is not instantiable at the
    valuation (unbound size variables). *)

val check :
  ?max_bytes:int ->
  ?max_flops:int ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t ->
  (estimate, Robust.Guard.kind) result
(** [Error (Over_budget _)] when a limit is exceeded (bytes checked
    first), [Error (Eval_error _)] when the operator is not
    instantiable at the valuation. *)

val admit :
  ?max_bytes:int ->
  ?max_flops:int ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t list ->
  (unit, Robust.Guard.kind) result
(** The candidate is admitted when {!check} passes under every
    valuation; the first failure is returned. *)
