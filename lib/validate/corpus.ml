module Valuation = Shape.Valuation
module Var = Shape.Var
module Graph = Pgraph.Graph
module Trace_io = Pgraph.Trace_io
module Guard = Robust.Guard

let ( let* ) r f = Result.bind r f

type origin = Differential | Static

let origin_label = function Differential -> "differential" | Static -> "static"

let origin_of_label = function
  | "differential" -> Some Differential
  | "static" -> Some Static
  | _ -> None

type entry = {
  ce_operator : Graph.operator;
  ce_signature : string;
  ce_fingerprint : string;
  ce_origin : origin;
  ce_valuation : Valuation.t;
  ce_seed : int;
  ce_tolerance : float;
  ce_backend : Differential.backend option;
  ce_detail : string;
  ce_abs_err : float;
  ce_fail : (int * float * float) option;
}

(* The structural fingerprint: the sorted multiset of primitive
   renderings.  Two operators share a fingerprint exactly when their
   traces apply the same primitives (possibly in a different order) —
   the "family" a counterexample generalizes over.  Signatures imply
   fingerprints, never the reverse. *)
let fingerprint (op : Graph.operator) =
  op.Graph.op_trace
  |> List.map Trace_io.prim_to_string
  |> List.sort compare
  |> String.concat ";"

let valuation_tokens v =
  Valuation.bindings v
  |> List.map (fun (var, n) ->
         let prefix = if Var.is_coefficient var then "'" else "" in
         Printf.sprintf "%s%s=%d" prefix (Var.name var) n)
  |> List.sort compare

(* Identity for dedup: everything that determines what replay would
   execute.  Detail text and error magnitudes are presentation only. *)
let ident e =
  String.concat "|"
    [
      e.ce_signature;
      origin_label e.ce_origin;
      String.concat "," (valuation_tokens e.ce_valuation);
      string_of_int e.ce_seed;
      (match e.ce_backend with None -> "-" | Some b -> Differential.backend_label b);
    ]

let sanitize_line s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let kind_detail = function
  | Guard.Eval_error m | Guard.Over_budget m | Guard.Backend_mismatch m | Guard.Diverged m
  | Guard.Static_violation m | Guard.Counterexample m ->
      m
  | Guard.Non_finite -> "non-finite"
  | Guard.Timeout -> "timeout"
  | Guard.Injected -> "injected"

(* --- Distillation ----------------------------------------------------------- *)

let of_differential ~tolerance op (f : Differential.failure) =
  {
    ce_operator = op;
    ce_signature = Graph.operator_signature op;
    ce_fingerprint = fingerprint op;
    ce_origin = Differential;
    ce_valuation = f.Differential.fl_valuation;
    ce_seed = f.Differential.fl_seed;
    ce_tolerance = tolerance;
    ce_backend = f.Differential.fl_backend;
    ce_detail = sanitize_line (kind_detail f.Differential.fl_kind);
    ce_abs_err = f.Differential.fl_abs_err;
    ce_fail =
      (match f.Differential.fl_index with
      | None -> None
      | Some i ->
          Some
            ( i,
              Option.value f.Differential.fl_expected ~default:Float.nan,
              Option.value f.Differential.fl_got ~default:Float.nan ));
  }

let of_static op valuation (d : Analysis.Verify.diagnostic) =
  {
    ce_operator = op;
    ce_signature = Graph.operator_signature op;
    ce_fingerprint = fingerprint op;
    ce_origin = Static;
    ce_valuation = valuation;
    ce_seed = 0;
    ce_tolerance = 0.0;
    ce_backend = None;
    ce_detail = sanitize_line (Analysis.Verify.diagnostic_to_string d);
    ce_abs_err = 0.0;
    ce_fail = None;
  }

(* --- Snapshot files ---------------------------------------------------------- *)

let header = "syno-corpus v1"

let entry_to_string e =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "entry: origin %s seed %d tolerance %h abs %h%s\n"
       (origin_label e.ce_origin) e.ce_seed e.ce_tolerance e.ce_abs_err
       (match e.ce_backend with
       | None -> ""
       | Some b -> " backend " ^ Differential.backend_label b));
  (match e.ce_fail with
  | None -> ()
  | Some (i, expected, got) ->
      Buffer.add_string buf (Printf.sprintf "fail: %d %h %h\n" i expected got));
  Buffer.add_string buf
    (Printf.sprintf "valuation: %s\n" (String.concat " " (valuation_tokens e.ce_valuation)));
  Buffer.add_string buf (Printf.sprintf "detail: %s\n" (sanitize_line e.ce_detail));
  Buffer.add_string buf (Trace_io.to_string e.ce_operator);
  Buffer.contents buf

let to_string entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "entries: %d\n" (List.length entries));
  List.iter (fun e -> Buffer.add_string buf (entry_to_string e)) entries;
  Buffer.contents buf

(* Atomic + durable, the [Search.Checkpoint] recipe: write to a temp
   file, fsync, rename into place, best-effort directory fsync.  A
   mid-append kill therefore leaves either the previous corpus or the
   new one — never a torn file. *)
let save ~path entries =
  let tmp = path ^ ".tmp" in
  let data = to_string entries in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.of_string data in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
      (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
      (try Unix.close dirfd with Unix.Unix_error _ -> ())

type error =
  | Io of string
  | Bad_header of string
  | Truncated of { expected : int; found : int }
  | Corrupt of string

let string_of_error = function
  | Io msg -> "cannot read corpus: " ^ msg
  | Bad_header line -> Printf.sprintf "bad corpus header %S (expected %S)" line header
  | Truncated { expected; found } ->
      Printf.sprintf "truncated corpus: header declares %d entries, found %d" expected found
  | Corrupt msg -> "corrupt corpus: " ^ msg

let parse_entry_header line =
  let bad () = Error (Corrupt (Printf.sprintf "bad entry header %S" line)) in
  match String.split_on_char ' ' (String.trim line) with
  | "entry:" :: "origin" :: o :: "seed" :: s :: "tolerance" :: t :: "abs" :: a :: rest -> (
      match
        (origin_of_label o, int_of_string_opt s, float_of_string_opt t, float_of_string_opt a)
      with
      | Some origin, Some seed, Some tolerance, Some abs -> (
          match rest with
          | [] -> Ok (origin, seed, tolerance, abs, None)
          | [ "backend"; b ] -> (
              match Differential.backend_of_label b with
              | Some backend -> Ok (origin, seed, tolerance, abs, Some backend)
              | None -> bad ())
          | _ -> bad ())
      | _ -> bad ())
  | _ -> bad ()

let parse_fail line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "fail:"; i; e; g ] -> (
      match (int_of_string_opt i, float_of_string_opt e, float_of_string_opt g) with
      | Some i, Some e, Some g -> Ok (Some (i, e, g))
      | _ -> Error (Corrupt (Printf.sprintf "bad fail line %S" line)))
  | _ -> Error (Corrupt (Printf.sprintf "bad fail line %S" line))

let parse_valuation line =
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun t -> t <> "" && t <> "valuation:")
  in
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      match String.index_opt tok '=' with
      | None -> Error (Corrupt (Printf.sprintf "bad valuation binding %S" tok))
      | Some i -> (
          let name = String.sub tok 0 i in
          let value = String.sub tok (i + 1) (String.length tok - i - 1) in
          let var =
            if String.length name > 1 && name.[0] = '\'' then
              Some (Var.coefficient (String.sub name 1 (String.length name - 1)))
            else if String.length name > 0 then Some (Var.primary name)
            else None
          in
          match (var, int_of_string_opt value) with
          | Some var, Some n -> Ok ((var, n) :: acc)
          | _ -> Error (Corrupt (Printf.sprintf "bad valuation binding %S" tok))))
    (Ok []) tokens
  |> Result.map (fun bindings -> Valuation.of_list (List.rev bindings))

let starts_with ~prefix line =
  let line = String.trim line in
  String.length line >= String.length prefix && String.sub line 0 (String.length prefix) = prefix

let declared_count lines =
  List.find_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ "entries:"; n ] -> int_of_string_opt n
      | _ -> None)
    lines

let of_string_result text =
  match String.split_on_char '\n' text with
  | [] | [ "" ] -> Error (Corrupt "empty corpus")
  | first :: rest ->
      if String.trim first <> header then Error (Bad_header first)
      else
        let is_entry l = starts_with ~prefix:"entry:" l in
        let rec groups acc current = function
          | [] -> List.rev (match current with None -> acc | Some g -> g :: acc)
          | line :: rest ->
              if is_entry line then
                let acc = match current with None -> acc | Some g -> g :: acc in
                groups acc (Some (line, [])) rest
              else (
                match current with
                | None -> groups acc None rest
                | Some (h, block) -> groups acc (Some (h, line :: block)) rest)
        in
        let rebuild (head, block_rev) =
          let* origin, seed, tolerance, abs, backend = parse_entry_header head in
          let block = List.rev block_rev in
          let* fail =
            match List.find_opt (starts_with ~prefix:"fail:") block with
            | None -> Ok None
            | Some line -> parse_fail line
          in
          let* valuation =
            match List.find_opt (starts_with ~prefix:"valuation:") block with
            | None -> Error (Corrupt "entry without a valuation line")
            | Some line -> parse_valuation line
          in
          let detail =
            match List.find_opt (starts_with ~prefix:"detail:") block with
            | None -> ""
            | Some line ->
                let line = String.trim line in
                String.trim (String.sub line 7 (String.length line - 7))
          in
          let op_block =
            block
            |> List.filter (fun l ->
                   not
                     (starts_with ~prefix:"fail:" l
                     || starts_with ~prefix:"valuation:" l
                     || starts_with ~prefix:"detail:" l))
            |> String.concat "\n"
          in
          let* operator =
            Result.map_error
              (fun msg -> Corrupt msg)
              (Trace_io.of_string ~allow_strided:true op_block)
          in
          Ok
            {
              ce_operator = operator;
              ce_signature = Graph.operator_signature operator;
              ce_fingerprint = fingerprint operator;
              ce_origin = origin;
              ce_valuation = valuation;
              ce_seed = seed;
              ce_tolerance = tolerance;
              ce_backend = backend;
              ce_detail = detail;
              ce_abs_err = abs;
              ce_fail = fail;
            }
        in
        let grouped = groups [] None rest in
        let* entries =
          List.fold_left
            (fun acc g ->
              let* acc = acc in
              let* e = rebuild g in
              Ok (e :: acc))
            (Ok []) grouped
        in
        let* () =
          match declared_count rest with
          | Some expected when expected <> List.length grouped ->
              Error (Truncated { expected; found = List.length grouped })
          | Some _ | None -> Ok ()
        in
        Ok (List.sort (fun a b -> compare (ident a) (ident b)) entries)

let load_result ~path =
  match open_in path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string_result text

(* --- The live corpus --------------------------------------------------------- *)

type stats = {
  st_entries : int;
  st_added : int;
  st_checked : int;
  st_matched : int;
  st_executed : int;
  st_rejected : int;
  st_writes : int;
}

type t = {
  path : string option;
  readonly : bool;
  every : int;
  mutex : Mutex.t;
  idents : (string, unit) Hashtbl.t;
  by_fingerprint : (string, entry list) Hashtbl.t;
  mutable count : int;
  mutable added : int;
  mutable pending : int;
  mutable writes : int;
  mutable checked : int;
  mutable matched : int;
  mutable executed : int;
  mutable rejected : int;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let make ?path ?(readonly = false) ?(every = 1) () =
  {
    path;
    readonly;
    every = max 1 every;
    mutex = Mutex.create ();
    idents = Hashtbl.create 64;
    by_fingerprint = Hashtbl.create 64;
    count = 0;
    added = 0;
    pending = 0;
    writes = 0;
    checked = 0;
    matched = 0;
    executed = 0;
    rejected = 0;
  }

let in_memory () = make ()

let insert_locked t e =
  let id = ident e in
  if Hashtbl.mem t.idents id then false
  else begin
    Hashtbl.add t.idents id ();
    let existing = Option.value (Hashtbl.find_opt t.by_fingerprint e.ce_fingerprint) ~default:[] in
    Hashtbl.replace t.by_fingerprint e.ce_fingerprint (existing @ [ e ]);
    t.count <- t.count + 1;
    true
  end

let entries_locked t =
  Hashtbl.fold (fun _ es acc -> es @ acc) t.by_fingerprint []
  |> List.sort (fun a b -> compare (ident a) (ident b))

let entries t = locked t (fun () -> entries_locked t)
let size t = locked t (fun () -> t.count)
let path t = t.path
let readonly t = t.readonly

let write_locked t =
  match t.path with
  | None -> t.pending <- 0
  | Some path ->
      save ~path (entries_locked t);
      t.writes <- t.writes + 1;
      t.pending <- 0

(* Preloaded entries (a resumed corpus, a seeding corpus) populate the
   index without counting as additions or triggering writes. *)
let preload t entries =
  locked t (fun () -> List.iter (fun e -> ignore (insert_locked t e)) entries)

let add t e =
  if t.readonly then false
  else
    locked t (fun () ->
        if insert_locked t e then begin
          t.added <- t.added + 1;
          t.pending <- t.pending + 1;
          if t.pending >= t.every then write_locked t;
          true
        end
        else false)

let merge_into t entries =
  if t.readonly then 0
  else
    locked t (fun () ->
        let added =
          List.fold_left
            (fun n e ->
              if insert_locked t e then begin
                t.added <- t.added + 1;
                t.pending <- t.pending + 1;
                n + 1
              end
              else n)
            0 entries
        in
        if t.pending > 0 then write_locked t;
        added)

let flush t =
  if not t.readonly then
    locked t (fun () -> if t.pending > 0 || (t.writes = 0 && t.path <> None) then write_locked t)

let writes t = locked t (fun () -> t.writes)

let stats t =
  locked t (fun () ->
      {
        st_entries = t.count;
        st_added = t.added;
        st_checked = t.checked;
        st_matched = t.matched;
        st_executed = t.executed;
        st_rejected = t.rejected;
        st_writes = t.writes;
      })

(* --- Opening (crash tolerance) ----------------------------------------------- *)

type open_report = {
  or_loaded : int;
  or_quarantined : (string * error) option;
}

(* A damaged corpus must never kill the search that would regrow it:
   quarantine the file aside (best-effort, skipped in readonly mode)
   and start empty, reporting what happened. *)
let open_file ?readonly ?every path =
  if not (Sys.file_exists path) then
    (make ~path ?readonly ?every (), { or_loaded = 0; or_quarantined = None })
  else
    match load_result ~path with
    | Ok entries ->
        let t = make ~path ?readonly ?every () in
        preload t entries;
        (t, { or_loaded = List.length entries; or_quarantined = None })
    | Error err ->
        let quarantine_path = path ^ ".corrupt" in
        let t = make ~path ?readonly ?every () in
        if not t.readonly then (try Sys.rename path quarantine_path with Sys_error _ -> ());
        (t, { or_loaded = 0; or_quarantined = Some (quarantine_path, err) })

(* --- Replay ------------------------------------------------------------------ *)

let replay_entry op ~signature e =
  if e.ce_signature = signature then
    (* The exact operator that failed before: reject without touching a
       tensor.  This is the re-encounter fast path the cegis bench
       gates on. *)
    Error
      (Guard.Counterexample
         (Printf.sprintf "known %s counterexample: %s" (origin_label e.ce_origin) e.ce_detail))
  else
    match e.ce_origin with
    | Static -> (
        match Analysis.Verify.program_opt op e.ce_valuation with
        | None -> Ok false
        | Some Analysis.Verify.Proved | Some (Analysis.Verify.Padded _) -> Ok true
        | Some (Analysis.Verify.Violation d) ->
            Error
              (Guard.Counterexample
                 ("static counterexample replay: " ^ Analysis.Verify.diagnostic_to_string d))
        | exception Failure _ -> Ok false)
    | Differential -> (
        let backend = Option.value e.ce_backend ~default:Differential.Reference in
        match
          Differential.replay_pair ~tolerance:e.ce_tolerance ~seed:e.ce_seed ~backend op
            e.ce_valuation
        with
        | Ok () -> Ok true
        | Error kind ->
            Error
              (Guard.Counterexample ("counterexample replay: " ^ kind_detail kind)))

let replay t op =
  let fp = fingerprint op in
  let signature = Graph.operator_signature op in
  let matching =
    locked t (fun () ->
        t.checked <- t.checked + 1;
        let es = Option.value (Hashtbl.find_opt t.by_fingerprint fp) ~default:[] in
        t.matched <- t.matched + List.length es;
        es)
  in
  if matching = [] then Ok ()
  else begin
    (* Exact-signature hits first: they are free, and a family sibling
       must never burn tensor time when the candidate itself is already
       a known counterexample. *)
    let ordered =
      List.stable_sort
        (fun a b ->
          compare (a.ce_signature <> signature) (b.ce_signature <> signature))
        matching
    in
    let rec go executed = function
      | [] ->
          locked t (fun () -> t.executed <- t.executed + executed);
          Ok ()
      | e :: rest -> (
          match replay_entry op ~signature e with
          | Ok ran -> go (if ran then executed + 1 else executed) rest
          | Error kind ->
              locked t (fun () ->
                  t.executed <- t.executed + executed;
                  t.rejected <- t.rejected + 1);
              Error kind)
    in
    go 0 ordered
  end

(* --- Sharding ----------------------------------------------------------------- *)

let shard_path ~base ~shard_id = Printf.sprintf "%s.shard%d" base shard_id

type merge_report = {
  mr_entries : entry list;
  mr_loaded : int list;
  mr_missing : int list;
  mr_quarantined : (int * error) list;
  mr_added : int;
}

let load_and_merge ~base ~shards =
  let acc = in_memory () in
  let loaded = ref [] in
  let missing = ref [] in
  let quarantined = ref [] in
  let added = ref 0 in
  for shard_id = 0 to shards - 1 do
    let path = shard_path ~base ~shard_id in
    if not (Sys.file_exists path) then missing := shard_id :: !missing
    else
      match load_result ~path with
      | Ok entries ->
          loaded := shard_id :: !loaded;
          added := !added + merge_into acc entries
      | Error err -> quarantined := (shard_id, err) :: !quarantined
  done;
  {
    mr_entries = entries acc;
    mr_loaded = List.rev !loaded;
    mr_missing = List.rev !missing;
    mr_quarantined = List.rev !quarantined;
    mr_added = !added;
  }
