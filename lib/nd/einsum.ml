let parse spec =
  match String.index_opt spec '-' with
  | Some i when i + 1 < String.length spec && spec.[i + 1] = '>' ->
      let lhs = String.sub spec 0 i in
      let rhs = String.sub spec (i + 2) (String.length spec - i - 2) in
      (String.split_on_char ',' lhs, rhs)
  | Some _ | None -> invalid_arg "Einsum: spec must contain '->'"

let input_labels spec = fst (parse spec)
let output_labels spec = snd (parse spec)

type plan = {
  out_shape : int array;
  out_extents : int array;  (* extents of output labels *)
  sum_extents : int array;  (* extents of summed labels *)
  (* Per input: strides indexed by (output label position, summed label
     position) so a flat offset is a dot product with the current
     assignment. *)
  in_out_strides : int array array;
  in_sum_strides : int array array;
  in_shapes : int array list;
}

let plan spec shapes =
  let inputs, out = parse spec in
  if List.length inputs <> List.length shapes then
    invalid_arg "Einsum.plan: input count mismatch";
  let extents = Hashtbl.create 16 in
  List.iter2
    (fun labels shape ->
      if String.length labels <> Array.length shape then
        invalid_arg
          (Printf.sprintf "Einsum.plan: labels %s do not match rank %d" labels
             (Array.length shape));
      String.iteri
        (fun i c ->
          match Hashtbl.find_opt extents c with
          | None -> Hashtbl.add extents c shape.(i)
          | Some e ->
              if e <> shape.(i) then
                invalid_arg (Printf.sprintf "Einsum.plan: inconsistent extent for '%c'" c))
        labels)
    inputs shapes;
  String.iteri
    (fun i c ->
      if not (Hashtbl.mem extents c) then
        invalid_arg (Printf.sprintf "Einsum.plan: output label '%c' unbound" c);
      (* A repeated output label ("ij->ii") would silently produce a full
         dense output with wrong semantics; numpy rejects it too. *)
      if String.index out c <> i then
        invalid_arg (Printf.sprintf "Einsum.plan: repeated output label '%c'" c))
    out;
  let all_labels =
    List.sort_uniq Char.compare
      (List.concat_map (fun l -> List.init (String.length l) (String.get l)) inputs)
  in
  let summed =
    List.filter (fun c -> not (String.contains out c)) all_labels
  in
  let out_list = List.init (String.length out) (String.get out) in
  let extent c = Hashtbl.find extents c in
  let strides_for labels shape =
    (* stride of each axis in its tensor *)
    let n = Array.length shape in
    let strides = Array.make n 1 in
    for i = n - 2 downto 0 do
      strides.(i) <- strides.(i + 1) * shape.(i + 1)
    done;
    (* label -> total stride (a label may repeat within one input, e.g.
       a trace; strides then add) *)
    fun c ->
      let total = ref 0 in
      String.iteri (fun i c' -> if c' = c then total := !total + strides.(i)) labels;
      !total
  in
  let per_input f = List.map2 (fun labels shape -> f (strides_for labels shape)) inputs shapes in
  {
    out_shape = Array.of_list (List.map extent out_list);
    out_extents = Array.of_list (List.map extent out_list);
    sum_extents = Array.of_list (List.map extent summed);
    in_out_strides =
      Array.of_list (per_input (fun stride -> Array.of_list (List.map stride out_list)));
    in_sum_strides =
      Array.of_list (per_input (fun stride -> Array.of_list (List.map stride summed)));
    in_shapes = shapes;
  }

(* Below this many scalar multiply-adds the loop runs sequentially even
   on a large pool: domain wakeup costs more than the contraction. *)
let par_threshold = 1 lsl 14

(* When cancellable, the body polls the token every [poll_quantum]
   output elements, so preemption latency is bounded by the work of one
   sub-chunk while keeping the poll off the inner accumulation loop. *)
let poll_quantum = 4096

let run ?pool ?cancel p tensors =
  List.iter2
    (fun t sh ->
      if Tensor.shape t <> sh then invalid_arg "Einsum.run: tensor shape changed since plan")
    tensors p.in_shapes;
  let datas = Array.of_list (List.map Tensor.unsafe_data tensors) in
  let n_inputs = Array.length datas in
  let out = Tensor.create p.out_shape in
  let out_data = Tensor.unsafe_data out in
  let n_out = Array.length p.out_extents in
  let n_sum = Array.length p.sum_extents in
  let total_out = Array.fold_left ( * ) 1 p.out_extents in
  let total_sum = Array.fold_left ( * ) 1 p.sum_extents in
  (* Each chunk of output elements gets private scratch, so domains
     share nothing mutable except disjoint slices of [out_data]; the
     per-element accumulation order is unchanged, making the result
     bit-identical at any pool size. *)
  let body lo hi =
    let out_idx = Array.make n_out 0 in
    let sum_idx = Array.make n_sum 0 in
    let offsets = Array.make n_inputs 0 in
    for flat_out = lo to hi - 1 do
      (* decode output assignment *)
      let rem = ref flat_out in
      for i = n_out - 1 downto 0 do
        out_idx.(i) <- !rem mod p.out_extents.(i);
        rem := !rem / p.out_extents.(i)
      done;
      (* base offsets from output labels *)
      for k = 0 to n_inputs - 1 do
        let off = ref 0 in
        let strides = p.in_out_strides.(k) in
        for i = 0 to n_out - 1 do
          off := !off + (strides.(i) * out_idx.(i))
        done;
        offsets.(k) <- !off
      done;
      let acc = ref 0.0 in
      for flat_sum = 0 to total_sum - 1 do
        let rem = ref flat_sum in
        for i = n_sum - 1 downto 0 do
          sum_idx.(i) <- !rem mod p.sum_extents.(i);
          rem := !rem / p.sum_extents.(i)
        done;
        let product = ref 1.0 in
        for k = 0 to n_inputs - 1 do
          let off = ref offsets.(k) in
          let strides = p.in_sum_strides.(k) in
          for i = 0 to n_sum - 1 do
            off := !off + (strides.(i) * sum_idx.(i))
          done;
          product := !product *. datas.(k).(!off)
        done;
        acc := !acc +. !product
      done;
      out_data.(flat_out) <- !acc
    done
  in
  let polled_body =
    match cancel with
    | None -> body
    | Some c ->
        fun lo hi ->
          let i = ref lo in
          while !i < hi do
            Robust.Cancel.check c;
            let j = min hi (!i + poll_quantum) in
            body !i j;
            i := j
          done
  in
  let work = total_out * total_sum * max 1 n_inputs in
  if work < par_threshold then polled_body 0 total_out
  else begin
    (* The pool polls the token at every claim/steal and between the
       slices of its sequential fallbacks, so the raw body goes in:
       the pool's auto-tuned grain (~tens of microseconds) bounds
       preemption latency tighter than [poll_quantum] would. *)
    let pool = match pool with Some p -> p | None -> Par.Pool.get_default () in
    Par.Pool.parallel_for pool ?cancel ~n:total_out body
  end;
  out

let einsum ?pool ?cancel spec tensors =
  run ?pool ?cancel (plan spec (List.map Tensor.shape tensors)) tensors
