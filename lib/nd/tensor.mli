(** Dense row-major float tensors.

    This is the substrate standing in for PyTorch's tensor library: the
    einsum-program code generator lowers synthesized operators onto
    these tensors, and the [grad]/[nn] libraries train real models on
    them.  Tensors are always contiguous; views copy. *)

type t

val create : int array -> t
(** Zero-filled tensor of the given shape.  A [| |] shape is a scalar. *)

val init : int array -> (int array -> float) -> t
val scalar : float -> t
val of_array : int array -> float array -> t
(** Raises [Invalid_argument] if the data length mismatches. *)

val shape : t -> int array
val numel : t -> int
val rank : t -> int

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val fill : t -> float -> unit

val unsafe_data : t -> float array
(** The flat backing store in row-major order (shared, not a copy). *)

val allocations : unit -> int
(** Monotone count of backing stores allocated so far (every
    constructor that makes a fresh tensor bumps it; in-place ops do
    not).  An allocation probe, not a memory meter: admission layers
    snapshot it around a budget check to prove a rejected candidate
    never allocated.  Thread-safe. *)

val flat_get : t -> int -> float
val flat_set : t -> int -> float -> unit

val copy : t -> t
val reshape : t -> int array -> t
(** Same element count; shares no storage (copies). *)

val transpose : t -> int array -> t
(** [transpose t perm] permutes axes: output axis [i] is input axis
    [perm.(i)]. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val add_ : t -> t -> unit
(** In-place accumulate: [add_ dst src]. *)

val axpy_ : float -> t -> t -> unit
(** [axpy_ a x y] performs [y <- a*x + y] in place. *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val argmax : t -> int
(** Flat index of the maximum element. *)

val sum_axis : t -> int -> t
(** Sum over one axis, removing it. *)

val matmul : t -> t -> t
(** 2-D matrix multiplication. *)

val rand_normal : Rng.t -> scale:float -> int array -> t
val rand_uniform : Rng.t -> lo:float -> hi:float -> int array -> t

val ravel_index : int array -> int array -> int
(** [ravel_index shape idx] is the row-major flat offset. *)

val unravel_index : int array -> int -> int array

val iteri : (int array -> float -> unit) -> t -> unit
val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
