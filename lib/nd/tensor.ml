type t = { shape : int array; data : float array }

let numel_of shape = Array.fold_left ( * ) 1 shape

(* Every fresh backing store is counted, so admission layers can assert
   that a rejected candidate never allocated (the probe behind the
   "rejected before allocation" guarantee of [validate]). *)
let alloc_count = Atomic.make 0

let allocations () = Atomic.get alloc_count

let fresh shape data =
  Atomic.incr alloc_count;
  { shape; data }

let create shape =
  Array.iter (fun d -> if d <= 0 then invalid_arg "Tensor.create: non-positive dim") shape;
  fresh (Array.copy shape) (Array.make (numel_of shape) 0.0)

let scalar v = fresh [||] [| v |]

let of_array shape data =
  if Array.length data <> numel_of shape then
    invalid_arg "Tensor.of_array: data length mismatch";
  fresh (Array.copy shape) (Array.copy data)

let shape t = Array.copy t.shape
let numel t = Array.length t.data
let rank t = Array.length t.shape

let ravel_index shape idx =
  let n = Array.length shape in
  if Array.length idx <> n then invalid_arg "Tensor.ravel_index: rank mismatch";
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= shape.(i) then invalid_arg "Tensor.ravel_index: out of bounds";
    off := (!off * shape.(i)) + idx.(i)
  done;
  !off

let unravel_index shape flat =
  let n = Array.length shape in
  let idx = Array.make n 0 in
  let rem = ref flat in
  for i = n - 1 downto 0 do
    idx.(i) <- !rem mod shape.(i);
    rem := !rem / shape.(i)
  done;
  idx

let get t idx = t.data.(ravel_index t.shape idx)
let set t idx v = t.data.(ravel_index t.shape idx) <- v
let fill t v = Array.fill t.data 0 (Array.length t.data) v
let unsafe_data t = t.data
let flat_get t i = t.data.(i)
let flat_set t i v = t.data.(i) <- v
let copy t = fresh (Array.copy t.shape) (Array.copy t.data)

let init shape f =
  let t = create shape in
  let n = Array.length t.data in
  for flat = 0 to n - 1 do
    t.data.(flat) <- f (unravel_index shape flat)
  done;
  t

let reshape t shape =
  if numel_of shape <> Array.length t.data then invalid_arg "Tensor.reshape: element count mismatch";
  fresh (Array.copy shape) (Array.copy t.data)

let transpose t perm =
  let n = rank t in
  if Array.length perm <> n then invalid_arg "Tensor.transpose: bad permutation";
  let out_shape = Array.map (fun p -> t.shape.(p)) perm in
  let out = create out_shape in
  let idx_in = Array.make n 0 in
  let total = Array.length t.data in
  for flat = 0 to total - 1 do
    let out_idx = unravel_index out_shape flat in
    for i = 0 to n - 1 do
      idx_in.(perm.(i)) <- out_idx.(i)
    done;
    out.data.(flat) <- t.data.(ravel_index t.shape idx_in)
  done;
  out

let map f t = fresh (Array.copy t.shape) (Array.map f t.data)

let map2 f a b =
  if a.shape <> b.shape then invalid_arg "Tensor.map2: shape mismatch";
  fresh (Array.copy a.shape) (Array.map2 f a.data b.data)

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale s t = map (fun x -> s *. x) t

let add_ dst src =
  if dst.shape <> src.shape then invalid_arg "Tensor.add_: shape mismatch";
  for i = 0 to Array.length dst.data - 1 do
    dst.data.(i) <- dst.data.(i) +. src.data.(i)
  done

let axpy_ a x y =
  if x.shape <> y.shape then invalid_arg "Tensor.axpy_: shape mismatch";
  for i = 0 to Array.length y.data - 1 do
    y.data.(i) <- y.data.(i) +. (a *. x.data.(i))
  done

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (max 1 (numel t))
let max_value t = Array.fold_left max neg_infinity t.data

let argmax t =
  let best = ref 0 in
  for i = 1 to Array.length t.data - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  !best

let iteri_aux t f =
  let sh = t.shape in
  let total = Array.length t.data in
  for flat = 0 to total - 1 do
    f (unravel_index sh flat) t.data.(flat)
  done

let iteri f t = iteri_aux t f

let sum_axis t axis =
  let n = rank t in
  if axis < 0 || axis >= n then invalid_arg "Tensor.sum_axis: bad axis";
  let out_shape = Array.of_list (List.filteri (fun i _ -> i <> axis) (Array.to_list t.shape)) in
  let out = create out_shape in
  let idx_out = Array.make (n - 1) 0 in
  iteri_aux t (fun idx v ->
      let j = ref 0 in
      for i = 0 to n - 1 do
        if i <> axis then begin
          idx_out.(!j) <- idx.(i);
          incr j
        end
      done;
      let o = ravel_index out_shape idx_out in
      out.data.(o) <- out.data.(o) +. v);
  out

let matmul a b =
  match (a.shape, b.shape) with
  | [| m; k |], [| k'; n |] when k = k' ->
      let out = create [| m; n |] in
      for i = 0 to m - 1 do
        for l = 0 to k - 1 do
          let av = a.data.((i * k) + l) in
          if av <> 0.0 then
            let boff = l * n in
            let ooff = i * n in
            for j = 0 to n - 1 do
              out.data.(ooff + j) <- out.data.(ooff + j) +. (av *. b.data.(boff + j))
            done
        done
      done;
      out
  | _ -> invalid_arg "Tensor.matmul: expected compatible 2-D tensors"

let rand_normal rng ~scale shape =
  let t = create shape in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- scale *. Rng.normal rng
  done;
  t

let rand_uniform rng ~lo ~hi shape =
  let t = create shape in
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- Rng.uniform rng ~lo ~hi
  done;
  t

let equal ?(eps = 1e-9) a b =
  a.shape = b.shape
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf t =
  Format.fprintf ppf "tensor%a"
    (fun ppf sh ->
      Format.fprintf ppf "[%s]" (String.concat "x" (Array.to_list (Array.map string_of_int sh))))
    t.shape
