(** Einstein-summation contraction over dense tensors.

    This is the general contraction engine that the einsum-program code
    generator targets (\u{00a7}8: "each contraction primitive is lowered to an
    einsum expression").  Specs use the familiar notation, e.g.
    ["nchw,dc->ndhw"]: repeated labels on the input side that do not
    appear in the output are summed over. *)

val einsum : ?pool:Par.Pool.t -> ?cancel:Robust.Cancel.t -> string -> Tensor.t list -> Tensor.t
(** [einsum spec inputs].  Raises [Invalid_argument] on malformed specs,
    rank mismatches, inconsistent label extents, or repeated output
    labels (["ij->ii"] is rejected, as in numpy).  [cancel] as in
    {!run}. *)

type plan

val plan : string -> int array list -> plan
(** Pre-compile a spec for repeated execution on tensors of the given
    shapes. *)

val run : ?pool:Par.Pool.t -> ?cancel:Robust.Cancel.t -> plan -> Tensor.t list -> Tensor.t
(** Execute a plan.  Large contractions chunk the output elements
    across [pool] (default: [Par.Pool.get_default ()]); each chunk uses
    private scratch, so the result is bit-identical at any pool size.
    Small contractions always run sequentially.

    [cancel] makes the contraction a cancellation safe point: the token
    is polled every few thousand output elements (and at every pool
    chunk claim), raising [Robust.Cancel.Cancelled] promptly when it
    trips.  Omitting it keeps the hot path entirely poll-free. *)

val output_labels : string -> string
val input_labels : string -> string list
