(* Work-stealing pool with granularity auto-tuning.

   One loop runs at a time.  The submitting domain reserves the pool
   ([busy]), probes a prefix of the body to estimate per-element cost,
   and either finishes sequentially (when the measured grain says
   parallelism cannot pay) or distributes the remainder: one
   contiguous slice per participant deque, split lazily in half down
   to the tuned grain, with idle participants stealing the oldest —
   largest — range from a random victim.  Completion is detected by an
   atomic count of elements executed or discarded, so an aborting loop
   (first body exception, or a tripped cancellation token observed at
   a claim) drains in-flight grains, discards the rest quickly, and
   leaves the pool reusable. *)

let parse_domains s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "SYNO_DOMAINS must be >= 1 (got %d)" n)
  | None -> Error (Printf.sprintf "SYNO_DOMAINS must be an integer (got %S)" s)

let warned_invalid_domains = Atomic.make false

let num_domains () =
  match Sys.getenv_opt "SYNO_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match parse_domains s with
      | Ok n -> n
      | Error msg ->
          let fallback = Domain.recommended_domain_count () in
          if not (Atomic.exchange warned_invalid_domains true) then
            Printf.eprintf "syno: warning: %s; falling back to %d domain%s\n%!" msg
              fallback
              (if fallback = 1 then "" else "s");
          fallback)

(* --- Tuning constants ----------------------------------------------------

   The probe runs real work (a prefix of the loop), so its only
   overhead is a few clock reads; it stops as soon as [probe_budget]
   of body time has accumulated, which also caps the damage when the
   very first element is expensive (grain 1, distribute immediately). *)

let probe_budget = 25e-6 (* stop probing after this much body time *)
let grain_target = 30e-6 (* aim each parallel grain at this much work *)
let pay_threshold = 150e-6 (* below this much remaining work, stay sequential *)
let seq_poll_target = 500e-6 (* cancellation poll cadence of sequential slices *)

(* --- Loop state ----------------------------------------------------------- *)

type loop = {
  lp_body : int -> int -> unit;
  lp_grain : int;
  lp_n : int;  (* the loop covers [0, lp_n) *)
  lp_deques : (int * int) list ref array;  (* one per participant slot *)
  lp_locks : Mutex.t array;  (* one per deque *)
  lp_accounted : int Atomic.t;  (* elements executed or discarded *)
  lp_aborted : bool Atomic.t;
  lp_cancel : Robust.Cancel.t option;
}

type t = {
  size : int;
  hw : int;  (* detected parallelism, for the can-it-pay check *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable current : loop option;  (* what sleeping workers pick up *)
  mutable busy : bool;  (* a submitter holds the pool (probe or loop) *)
  mutable generation : int;
  mutable error : exn option;  (* first body exception of the busy loop *)
  mutable stop : bool;
  mutable retired : bool;  (* shutdown requested; honored once idle *)
  mutable active : int;  (* submitters between reserve and release *)
  mutable workers : unit Domain.t list;
  mutable worker_ids : Domain.id list;
}

let size t = t.size
let inside_pool t = List.mem (Domain.self ()) t.worker_ids

(* --- Deques ---------------------------------------------------------------- *)

let pop_own lp slot =
  let m = lp.lp_locks.(slot) in
  Mutex.lock m;
  let q = lp.lp_deques.(slot) in
  let r =
    match !q with
    | [] -> None
    | x :: tl ->
        q := tl;
        Some x
  in
  Mutex.unlock m;
  r

let push_own lp slot r =
  let m = lp.lp_locks.(slot) in
  Mutex.lock m;
  let q = lp.lp_deques.(slot) in
  q := r :: !q;
  Mutex.unlock m

(* Steal the oldest (bottom) range — the largest unsplit remainder —
   from the first non-empty victim, scanning from a random start. *)
let steal lp ~self ~start =
  let k = Array.length lp.lp_deques in
  let rec last_and_rest acc = function
    | [ x ] -> (List.rev acc, x)
    | x :: tl -> last_and_rest (x :: acc) tl
    | [] -> assert false
  in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < k do
    let v = (start + !i) mod k in
    if v <> self then begin
      let m = lp.lp_locks.(v) in
      Mutex.lock m;
      (match !(lp.lp_deques.(v)) with
      | [] -> ()
      | q ->
          let rest, x = last_and_rest [] q in
          lp.lp_deques.(v) := rest;
          found := Some x);
      Mutex.unlock m
    end;
    incr i
  done;
  !found

(* --- Executing one loop ---------------------------------------------------- *)

let account lp len = ignore (Atomic.fetch_and_add lp.lp_accounted len)

(* Polled at every claim and between grains of a split range. *)
let loop_cancelled lp =
  Atomic.get lp.lp_aborted
  ||
  match lp.lp_cancel with
  | Some c when Robust.Cancel.is_cancelled c ->
      Atomic.set lp.lp_aborted true;
      true
  | Some _ | None -> false

let rec exec t lp slot (lo, hi) =
  if loop_cancelled lp then
    (* abort drain: the range was never started, discard it whole *)
    account lp (hi - lo)
  else if hi - lo > lp.lp_grain then begin
    let mid = lo + ((hi - lo) / 2) in
    push_own lp slot (mid, hi);
    exec t lp slot (lo, mid)
  end
  else begin
    (match lp.lp_body lo hi with
    | () -> ()
    | exception e ->
        Mutex.lock t.mutex;
        if t.error = None then t.error <- Some e;
        Mutex.unlock t.mutex;
        Atomic.set lp.lp_aborted true);
    account lp (hi - lo)
  end

let run_loop t lp slot =
  let k = Array.length lp.lp_deques in
  let seed = ref ((slot * 0x9e3779b1) lor 1) in
  let random_start () =
    seed := (!seed * 1103515245) + 12345;
    (!seed lsr 17) mod k
  in
  let rec go idle =
    if Atomic.get lp.lp_accounted >= lp.lp_n then ()
    else
      match pop_own lp slot with
      | Some r ->
          exec t lp slot r;
          go 0
      | None -> (
          match steal lp ~self:slot ~start:(random_start ()) with
          | Some r ->
              exec t lp slot r;
              go 0
          | None ->
              (* every deque is momentarily empty but elements are still
                 unaccounted: a participant inside a grain may push
                 splits; spin briefly, then back off so an oversubscribed
                 machine can run whoever holds the work *)
              if idle > 4 then Unix.sleepf 50e-6 else Domain.cpu_relax ();
              go (min 16 (idle + 1)))
  in
  go 0

(* --- Workers ---------------------------------------------------------------- *)

let worker_main t slot () =
  let last_gen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.generation <> !last_gen then begin
      last_gen := t.generation;
      match t.current with
      | Some lp ->
          Mutex.unlock t.mutex;
          run_loop t lp slot;
          Mutex.lock t.mutex;
          loop ()
      | None -> loop ()
    end
    else begin
      Condition.wait t.work_ready t.mutex;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size = max 1 (match domains with Some d -> d | None -> num_domains ()) in
  let t =
    {
      size;
      hw = num_domains ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      current = None;
      busy = false;
      generation = 0;
      error = None;
      stop = false;
      retired = false;
      active = 0;
      workers = [];
      worker_ids = [];
    }
  in
  t.workers <- List.init (size - 1) (fun i -> Domain.spawn (worker_main t (i + 1)));
  t.worker_ids <- List.map Domain.get_id t.workers;
  t

(* Stop and collect the workers for joining.  Called with [t.mutex] held. *)
let halt_locked t =
  if t.stop then None
  else begin
    t.stop <- true;
    Condition.broadcast t.work_ready;
    let ws = t.workers in
    t.workers <- [];
    t.worker_ids <- [];
    Some ws
  end

let join_opt = function Some ws -> List.iter Domain.join ws | None -> ()

let shutdown t =
  Mutex.lock t.mutex;
  t.retired <- true;
  let to_join = halt_locked t in
  Mutex.unlock t.mutex;
  join_opt to_join

(* Deferred shutdown: stop now when idle, otherwise mark and let the
   last releasing submitter perform the join.  Never blocks on
   in-flight loops. *)
let retire t =
  Mutex.lock t.mutex;
  t.retired <- true;
  let to_join = if t.active = 0 then halt_locked t else None in
  Mutex.unlock t.mutex;
  join_opt to_join

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- Submitting loops -------------------------------------------------------- *)

(* Release the reservation taken by [parallel_for]; the last submitter
   out of a retired pool performs the deferred shutdown. *)
let release t =
  Mutex.lock t.mutex;
  t.busy <- false;
  t.active <- t.active - 1;
  let to_join = if t.retired && t.active = 0 then halt_locked t else None in
  Mutex.unlock t.mutex;
  join_opt to_join

(* Sequential execution with periodic cancellation polls — used by
   every fallback path (size 1, nested, contended, tuner-declined), so
   preemptive deadlines keep their granularity even when the pool
   cannot parallelize. *)
let seq_run ?cancel ~grain body lo n =
  match cancel with
  | None -> if lo < n then body lo n
  | Some c ->
      let i = ref lo in
      while !i < n do
        Robust.Cancel.check c;
        let j = min n (!i + grain) in
        body !i j;
        i := j
      done

let fallback_grain ~n chunks =
  match chunks with
  | Some c -> max 1 ((n + c - 1) / max 1 c)
  | None -> max 1 (n / 32)

(* Time a prefix of the body, growing the batch geometrically so cheap
   bodies don't drown in clock reads.  Returns elements done and the
   elapsed body time. *)
let probe body n =
  let t0 = Unix.gettimeofday () in
  let rec go done_ batch =
    let hi = min n (done_ + batch) in
    body done_ hi;
    let elapsed = Unix.gettimeofday () -. t0 in
    if hi >= n || elapsed >= probe_budget then (hi, elapsed)
    else go hi (batch * 4)
  in
  go 0 1

(* Install the loop, participate as slot 0, tear down, re-raise. *)
let launch t ?cancel ~start ~n ~grain body =
  let k = t.size in
  let lp =
    {
      lp_body = body;
      lp_grain = grain;
      lp_n = n;
      lp_deques = Array.init k (fun _ -> ref []);
      lp_locks = Array.init k (fun _ -> Mutex.create ());
      lp_accounted = Atomic.make start;
      lp_aborted = Atomic.make false;
      lp_cancel = cancel;
    }
  in
  (* one contiguous slice per participant; lazy splitting does the rest *)
  let remaining = n - start in
  for i = 0 to k - 1 do
    let lo = start + (i * remaining / k) and hi = start + ((i + 1) * remaining / k) in
    if hi > lo then lp.lp_deques.(i) := [ (lo, hi) ]
  done;
  Mutex.lock t.mutex;
  t.current <- Some lp;
  t.error <- None;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  run_loop t lp 0;
  (* accounted = n: every grain has returned, nothing is in flight *)
  Mutex.lock t.mutex;
  t.current <- None;
  let err = t.error in
  t.error <- None;
  Mutex.unlock t.mutex;
  release t;
  match err with
  | Some e -> raise e
  | None -> ( match cancel with Some c -> Robust.Cancel.check c | None -> ())

let parallel_for t ?cancel ~n ?chunks body =
  if n <= 0 then ()
  else begin
    (* a pre-tripped token raises before any work, on every path *)
    (match cancel with Some c -> Robust.Cancel.check c | None -> ());
    if t.size <= 1 || n = 1 || inside_pool t then
      seq_run ?cancel ~grain:(fallback_grain ~n chunks) body 0 n
    else begin
      Mutex.lock t.mutex;
      if t.busy || t.stop then begin
        (* another domain drives a loop, or the pool is shut down: run
           on the caller — with periodic polls, not one upfront check *)
        Mutex.unlock t.mutex;
        seq_run ?cancel ~grain:(fallback_grain ~n chunks) body 0 n
      end
      else begin
        t.busy <- true;
        t.active <- t.active + 1;
        Mutex.unlock t.mutex;
        match chunks with
        | Some c ->
            (* explicit chunking is a distribution request: skip the tuner *)
            let c = min n (max 1 c) in
            launch t ?cancel ~start:0 ~n ~grain:(max 1 ((n + c - 1) / c)) body
        | None -> (
            match probe body n with
            | exception e ->
                release t;
                raise e
            | done_, elapsed ->
                if done_ >= n then begin
                  release t;
                  match cancel with Some c -> Robust.Cancel.check c | None -> ()
                end
                else begin
                  let per = Float.max 1e-9 (elapsed /. float_of_int (max 1 done_)) in
                  let remaining = n - done_ in
                  let predicted = float_of_int remaining *. per in
                  if t.hw < 2 || predicted < pay_threshold then begin
                    (* the measured grain says parallelism can't pay *)
                    let grain =
                      max 1 (min remaining (int_of_float (seq_poll_target /. per)))
                    in
                    match seq_run ?cancel ~grain body done_ n with
                    | () -> release t
                    | exception e ->
                        release t;
                        raise e
                  end
                  else begin
                    (* enough grains to balance, each worth ~grain_target *)
                    let ideal = int_of_float (grain_target /. per) in
                    let cap = max 1 (remaining / (2 * t.size)) in
                    launch t ?cancel ~start:done_ ~n ~grain:(max 1 (min ideal cap)) body
                  end
                end)
      end
    end
  end

let map t ?cancel f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (match cancel with Some c -> Robust.Cancel.check c | None -> ());
    if n <= max 2 (2 * t.size) then begin
      (* few, potentially heavy elements (parallel search trees, say):
         one element per task balances best, and the boxing is
         negligible at this size *)
      let out = Array.make n None in
      parallel_for t ?cancel ~n ~chunks:n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- Some (f arr.(i))
          done);
      Array.map (function Some x -> x | None -> assert false) out
    end
    else begin
      (* many elements: seed the result with the first and let the
         granularity tuner pick chunking — no per-element boxing *)
      let first = f arr.(0) in
      let out = Array.make n first in
      parallel_for t ?cancel ~n:(n - 1) (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i + 1) <- f arr.(i + 1)
          done);
      out
    end
  end

(* --- Default pool -------------------------------------------------------- *)

let default_mutex = Mutex.create ()
let default_pool = ref None
let default_size = ref None

let get_default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ?domains:!default_size () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  pool

let set_default_domains n =
  Mutex.lock default_mutex;
  let old = !default_pool in
  default_size := Some (max 1 n);
  default_pool := None;
  Mutex.unlock default_mutex;
  (* Retire, don't shutdown: another thread may still be mid-loop on
     the old pool; the last loop out performs the deferred join. *)
  match old with Some p -> retire p | None -> ()
