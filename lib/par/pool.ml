let num_domains () =
  match Sys.getenv_opt "SYNO_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* One in-flight loop at a time.  Chunks are claimed under [mutex];
   [generation] distinguishes successive loops so sleeping workers never
   re-run a drained one.  A loop is finished when every chunk has been
   claimed ([next_chunk] exhausted) and none is still running
   ([outstanding] zero) — tracking claims and completions separately is
   what lets an erroring chunk cancel the unclaimed remainder without
   wedging the completion wait. *)
type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable body : (int -> int -> unit) option;
  mutable bounds : (int * int) array;
  mutable next_chunk : int;
  mutable outstanding : int;
  mutable generation : int;
  mutable error : exn option;
  mutable cancel : Robust.Cancel.t option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable worker_ids : Domain.id list;
}

let size t = t.size

(* Claim and run chunks until none remain.  Called and returns with
   [t.mutex] held.  The first exception is recorded and aborts the
   loop: chunks not yet claimed are skipped (by any domain — the claim
   cursor is pushed past the end), chunks already running elsewhere
   drain normally, and the pool is left reusable.  A tripped
   cancellation token aborts with exactly the same discipline, checked
   at every chunk claim so the remainder is skipped within one chunk of
   the trip. *)
let drain t body =
  let rec go () =
    (match t.cancel with
    | Some c when Robust.Cancel.is_cancelled c -> t.next_chunk <- Array.length t.bounds
    | Some _ | None -> ());
    if t.next_chunk < Array.length t.bounds then begin
      let c = t.next_chunk in
      t.next_chunk <- c + 1;
      t.outstanding <- t.outstanding + 1;
      Mutex.unlock t.mutex;
      let lo, hi = t.bounds.(c) in
      let err = match body lo hi with () -> None | exception e -> Some e in
      Mutex.lock t.mutex;
      t.outstanding <- t.outstanding - 1;
      (match err with
      | Some e ->
          if t.error = None then t.error <- Some e;
          t.next_chunk <- Array.length t.bounds
      | None -> ());
      if t.next_chunk >= Array.length t.bounds && t.outstanding = 0 then
        Condition.broadcast t.work_done;
      go ()
    end
  in
  go ()

let worker_main t () =
  let last_gen = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else if t.generation <> !last_gen then begin
      last_gen := t.generation;
      (match t.body with Some body -> drain t body | None -> ());
      loop ()
    end
    else begin
      Condition.wait t.work_ready t.mutex;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size = max 1 (match domains with Some d -> d | None -> num_domains ()) in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      body = None;
      bounds = [||];
      next_chunk = 0;
      outstanding = 0;
      generation = 0;
      error = None;
      cancel = None;
      stop = false;
      workers = [];
      worker_ids = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_main t));
  t.worker_ids <- List.map Domain.get_id t.workers;
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.worker_ids <- []

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let inside_pool t = List.mem (Domain.self ()) t.worker_ids

let parallel_for t ?cancel ~n ?chunks body =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 || inside_pool t then begin
    (match cancel with Some c -> Robust.Cancel.check c | None -> ());
    body 0 n
  end
  else begin
    let n_chunks = min n (max 1 (match chunks with Some c -> c | None -> 4 * t.size)) in
    let bounds = Array.init n_chunks (fun i -> (i * n / n_chunks, (i + 1) * n / n_chunks)) in
    Mutex.lock t.mutex;
    if t.body <> None then begin
      (* another domain already drives a loop on this pool *)
      Mutex.unlock t.mutex;
      (match cancel with Some c -> Robust.Cancel.check c | None -> ());
      body 0 n
    end
    else begin
      t.body <- Some body;
      t.bounds <- bounds;
      t.next_chunk <- 0;
      t.outstanding <- 0;
      t.error <- None;
      t.cancel <- cancel;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      drain t body;
      while not (t.next_chunk >= Array.length t.bounds && t.outstanding = 0) do
        Condition.wait t.work_done t.mutex
      done;
      (* Reset the loop state before re-raising: the pool must come out
         of a failed loop as reusable as it went in, so a later call
         never observes a stale body, bounds, error, or token. *)
      t.body <- None;
      t.bounds <- [||];
      t.next_chunk <- 0;
      let err = t.error in
      t.error <- None;
      t.cancel <- None;
      Mutex.unlock t.mutex;
      match err with
      | Some e -> raise e
      | None -> ( match cancel with Some c -> Robust.Cancel.check c | None -> ())
    end
  end

let map t ?cancel f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for t ?cancel ~n ~chunks:n (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f arr.(i))
        done);
    Array.map (function Some x -> x | None -> assert false) out
  end

(* --- Default pool -------------------------------------------------------- *)

let default_mutex = Mutex.create ()
let default_pool = ref None
let default_size = ref None

let get_default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ?domains:!default_size () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  pool

let set_default_domains n =
  Mutex.lock default_mutex;
  let old = !default_pool in
  default_size := Some (max 1 n);
  default_pool := None;
  Mutex.unlock default_mutex;
  match old with Some p -> shutdown p | None -> ()
