(** Fixed pool of worker domains for data-parallel loops.

    The pool is built on [Domain], [Mutex], and [Condition] only — no
    external dependencies.  A pool of size [n] owns [n - 1] worker
    domains; the calling domain participates in every loop, so size 1
    degenerates to a plain sequential loop with no synchronization.

    Work is handed out as index chunks claimed under the pool mutex, so
    scheduling is dynamic, but each loop body receives a disjoint range
    and parallel results are deterministic whenever the body writes only
    to its own range (the einsum and root-parallel-MCTS callers are
    designed that way; see DESIGN.md). *)

type t

val num_domains : unit -> int
(** Detected parallelism: the [SYNO_DOMAINS] environment variable when
    set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of total size [max 1 domains]
    ([domains - 1] worker domains).  Default: [num_domains ()]. *)

val size : t -> int
(** Total parallelism of the pool (workers + calling domain). *)

val parallel_for :
  t -> ?cancel:Robust.Cancel.t -> n:int -> ?chunks:int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body lo hi] over disjoint
    subranges covering [0, n).  [chunks] controls the number of
    subranges (default [4 * size], capped at [n]).  Runs sequentially
    as [body 0 n] when the pool has size 1, when [n <= 1], or when
    called from inside one of the pool's own workers (nested calls do
    not deadlock).

    A raising body aborts the loop: chunks not yet claimed are skipped,
    chunks already in flight on other domains drain normally, and the
    first exception is re-raised in the caller once the loop has
    drained.  The failure is fully contained — the pool stays usable
    for subsequent loops, and waiting submitters are never stranded.

    [cancel] makes the loop cooperatively cancellable with exactly the
    same discipline: the token is polled at every chunk claim, a trip
    skips the unclaimed remainder, in-flight chunks drain, and
    [Robust.Cancel.Cancelled] is raised in the caller after the drain
    (an exception from the body takes priority over cancellation).
    The sequential fallbacks check the token once before running. *)

val map : t -> ?cancel:Robust.Cancel.t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr] with elements computed on the
    pool, one chunk per element.  Order is preserved.  [cancel] as in
    {!parallel_for}. *)

val shutdown : t -> unit
(** Join and free the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    including on exceptions. *)

val get_default : unit -> t
(** A process-wide shared pool, created lazily at [num_domains ()] (or
    the size set by [set_default_domains]).  Library code that wants
    parallelism without threading a pool through its API (e.g.
    [Nd.Einsum.run]) uses this. *)

val set_default_domains : int -> unit
(** Fix the size of the default pool, shutting down any existing one.
    This is what the [--domains] CLI flag calls. *)
