(** Work-stealing pool of worker domains for data-parallel loops.

    The pool is built on [Domain], [Mutex], and [Condition] only — no
    external dependencies.  A pool of size [n] owns [n - 1] worker
    domains; the calling domain participates in every loop, so size 1
    degenerates to a plain sequential loop with no synchronization.

    Scheduling is work-stealing with lazy binary splitting: each
    participant owns a deque of index ranges, pops from its own head,
    splits ranges larger than the loop's grain in half (pushing the
    upper half back for thieves), and steals the oldest — largest —
    range from a random victim when its own deque runs dry.  The grain
    is auto-tuned per loop: the submitting domain times a small probe
    prefix of the body, derives the per-element cost, and picks a chunk
    size that amortizes claim overhead; when the measured grain says
    parallelism cannot pay (the remaining work is tiny, or only one
    hardware thread is available), the loop falls back to a sequential
    run on the caller — still polling cancellation periodically.

    Whatever the schedule, each loop body receives a disjoint range, so
    parallel results are bit-identical at any pool size whenever the
    body writes only to its own range and keeps per-element work
    self-contained (the einsum and MCTS callers are designed that way;
    see DESIGN.md). *)

type t

val parse_domains : string -> (int, string) Stdlib.result
(** Parse a [SYNO_DOMAINS] value: [Ok n] for a positive integer,
    [Error message] (in the CLI converter style) otherwise. *)

val num_domains : unit -> int
(** Detected parallelism: the [SYNO_DOMAINS] environment variable when
    set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  An invalid setting falls
    back to the recommended count and emits a one-line warning on
    stderr (once per process). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of total size [max 1 domains]
    ([domains - 1] worker domains).  Default: [num_domains ()]. *)

val size : t -> int
(** Total parallelism of the pool (workers + calling domain). *)

val parallel_for :
  t -> ?cancel:Robust.Cancel.t -> n:int -> ?chunks:int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body lo hi] over disjoint
    subranges covering [0, n).  Chunking is picked by the granularity
    tuner (see above); [chunks] overrides it, forcing distribution
    into roughly [chunks] ranges of grain [n / chunks] even when the
    tuner would run sequentially — tests and callers with few heavy
    tasks use this.  Runs sequentially when the pool has size 1, when
    [n <= 1], when called from inside one of the pool's own workers
    (nested calls do not deadlock), when another domain already drives
    a loop on this pool, or after shutdown.

    A raising body aborts the loop: ranges not yet claimed are
    discarded, grains already in flight on other domains drain
    normally, and the first exception is re-raised in the caller once
    the loop has drained.  The failure is fully contained — the pool
    stays usable for subsequent loops, and waiting submitters are
    never stranded.

    [cancel] makes the loop cooperatively cancellable with exactly the
    same discipline: the token is polled at every range claim and
    steal (and between grains of a split range), a trip discards the
    unclaimed remainder, in-flight grains drain, and
    [Robust.Cancel.Cancelled] is raised in the caller after the drain
    (an exception from the body takes priority over cancellation).
    Every sequential fallback — size 1, nested, contended, and
    tuner-declined loops alike — also polls the token periodically
    between slices, so preemption latency stays bounded even when the
    pool cannot parallelize. *)

val map : t -> ?cancel:Robust.Cancel.t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr] with elements computed on
    the pool.  Small arrays (up to twice the pool size) get one
    element per task, so a handful of heavy jobs — parallel search
    trees, say — balance perfectly; larger arrays compute the first
    element on the caller to seed the result and let the granularity
    tuner pick chunking, with no per-element boxing.  Order is
    preserved.  [cancel] as in {!parallel_for}. *)

val shutdown : t -> unit
(** Join and free the worker domains.  Idempotent.  Later loops on the
    pool run sequentially on the caller. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    including on exceptions. *)

val get_default : unit -> t
(** A process-wide shared pool, created lazily at [num_domains ()] (or
    the size set by [set_default_domains]).  Library code that wants
    parallelism without threading a pool through its API (e.g.
    [Nd.Einsum.run]) uses this. *)

val set_default_domains : int -> unit
(** Fix the size of the default pool.  An existing default pool is
    retired: it is shut down immediately when idle, otherwise the
    shutdown is deferred until the loops currently running on it (from
    other threads) have drained — in-flight work is never cut short.
    Either way, loops submitted to the old pool after this call run
    sequentially.  This is what the [--domains] CLI flag calls. *)
