(** Trainable layers.

    A layer owns its parameter tensors (updated in place by the
    optimizer) and knows how to apply itself given the tape-wrapped
    parameter variables.  Synthesized operators enter a model through
    {!of_operator}, which wires [Lower.Reference]'s exact forward and
    backward into the tape. *)

type t = {
  name : string;
  params : Nd.Tensor.t list;
  apply : Grad.Tape.t -> Grad.Op.v list -> Grad.Op.v -> Grad.Op.v;
}

val linear : Nd.Rng.t -> in_features:int -> out_features:int -> t
(** Affine map on the last axis: input [[...; in]] -> [[...; out]]. *)

val grouped_linear : Nd.Rng.t -> features:int -> groups:int -> t
(** Block-diagonal projection of the last axis: the features are split
    into [groups] blocks, each with its own square weight.  This is the
    grouped-projection structure Syno discovers for the GPT-2 QKV
    substitution (\u{00a7}9.3): [groups]x fewer parameters and FLOPs. *)

val relu : t
val global_avg_pool : t
val flatten : t
(** Collapse all axes after the first. *)

val channel_affine : Nd.Rng.t -> channels:int -> t
(** Per-channel scale and shift on axis 1 (a lightweight stand-in for
    batch normalization). *)

val of_operator :
  ?forward:(input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t) ->
  Nd.Rng.t ->
  name:string ->
  Lower.Reference.t ->
  t
(** A synthesized (or standard, e.g. convolution) operator layer with
    its weight tensors, trained via the reference backward pass.
    [forward] substitutes a faster forward executor (e.g. a certified
    specialized kernel) for the same operator — it must be numerically
    equivalent to [Lower.Reference.forward] up to float association;
    the backward pass stays the reference one. *)

val sequential : string -> t list -> t
val residual : string -> t list -> t
(** [x + body x]; the body must preserve the shape. *)

val num_params : t -> int
