type batch = { images : Nd.Tensor.t; labels : int array }

type outcome =
  | Completed
  | Aborted_non_finite of { epoch : int; step : int }
  | Aborted_diverged of { epoch : int; loss : float; initial : float }
  | Aborted_cancelled of { epoch : int; step : int }

let outcome_label = function
  | Completed -> "completed"
  | Aborted_non_finite _ -> "non_finite_loss"
  | Aborted_diverged _ -> "diverged"
  | Aborted_cancelled _ -> "cancelled"

type sentinel = {
  check_finite : bool;
  divergence_factor : float;
  divergence_patience : int;
}

let default_sentinel = { check_finite = true; divergence_factor = 10.0; divergence_patience = 2 }

let sentinel ?(check_finite = default_sentinel.check_finite)
    ?(divergence_factor = default_sentinel.divergence_factor)
    ?(divergence_patience = default_sentinel.divergence_patience) () =
  if not (divergence_factor > 0.0) then
    invalid_arg "Train.sentinel: divergence_factor must be > 0";
  if divergence_patience < 1 then invalid_arg "Train.sentinel: divergence_patience must be >= 1";
  { check_finite; divergence_factor; divergence_patience }

type history = {
  epoch_losses : float list;
  epoch_accuracies : float list;
  final_train_accuracy : float;
  final_eval_accuracy : float;
  outcome : outcome;
  aborted : bool;
}

let evaluate model batches =
  let total, correct =
    List.fold_left
      (fun (total, correct) { images; labels } ->
        let stats = Model.evaluate model ~images ~labels in
        let n = Array.length labels in
        (total + n, correct +. (stats.Model.accuracy *. float_of_int n)))
      (0, 0.0) batches
  in
  if total = 0 then 0.0 else correct /. float_of_int total

let fit ?log ?clip_norm ?(sentinel = default_sentinel) ?cancel model opt ~epochs ~train ~eval =
  let base_lr = Optimizer.lr opt in
  let steps_per_epoch = List.length train in
  let total_steps = epochs * steps_per_epoch in
  let step = ref 0 in
  let losses = ref [] and accs = ref [] in
  let outcome = ref Completed in
  let initial = ref None in
  let streak = ref 0 in
  let exception Abort in
  (try
     for epoch = 1 to epochs do
       let loss_sum = ref 0.0 and acc_sum = ref 0.0 in
       let step_in_epoch = ref 0 in
       List.iter
         (fun { images; labels } ->
           (* Per-step safe point: a tripped token abandons the run
              before the next (expensive) train step, keeping the stats
              of every epoch that already completed. *)
           (match cancel with
           | Some c when Robust.Cancel.is_cancelled c ->
               outcome := Aborted_cancelled { epoch; step = !step_in_epoch + 1 };
               raise_notrace Abort
           | Some _ | None -> ());
           Optimizer.set_lr opt (Optimizer.cosine_lr ~base:base_lr ~total_steps !step);
           incr step;
           incr step_in_epoch;
           let stats = Model.train_step ?clip_norm model opt ~images ~labels in
           if sentinel.check_finite && not (Float.is_finite stats.Model.loss) then begin
             outcome := Aborted_non_finite { epoch; step = !step_in_epoch };
             raise_notrace Abort
           end;
           loss_sum := !loss_sum +. stats.Model.loss;
           acc_sum := !acc_sum +. stats.Model.accuracy)
         train;
       let n = float_of_int (max 1 steps_per_epoch) in
       let epoch_loss = !loss_sum /. n and epoch_acc = !acc_sum /. n in
       (* Per-epoch stats are recorded only for epochs that ran to
          completion, so [final_train_accuracy] below is always from
          the last completed epoch even after an abort. *)
       losses := epoch_loss :: !losses;
       accs := epoch_acc :: !accs;
       (match log with
       | Some f -> f ~epoch ~loss:epoch_loss ~accuracy:epoch_acc
       | None -> ());
       match !initial with
       | None -> initial := Some epoch_loss
       | Some base ->
           if epoch_loss > sentinel.divergence_factor *. base then begin
             incr streak;
             if !streak >= sentinel.divergence_patience then begin
               outcome := Aborted_diverged { epoch; loss = epoch_loss; initial = base };
               raise_notrace Abort
             end
           end
           else streak := 0
     done
   with Abort -> ());
  Optimizer.set_lr opt base_lr;
  let outcome = !outcome in
  {
    epoch_losses = List.rev !losses;
    epoch_accuracies = List.rev !accs;
    final_train_accuracy = (match !accs with a :: _ -> a | [] -> 0.0);
    final_eval_accuracy = evaluate model eval;
    outcome;
    aborted = outcome <> Completed;
  }
