(** A model is a root layer plus the bookkeeping to run training steps:
    wrap parameters on a fresh tape, forward, loss, backward, and
    collect gradients in parameter order. *)

type t

val of_layer : Layer.t -> t
val params : t -> Nd.Tensor.t list
val num_params : t -> int

val forward : t -> Grad.Tape.t -> Grad.Op.v -> Grad.Op.v * Grad.Op.v list
(** Returns the output value and the tape variables of the parameters
    (aligned with {!params}), so callers can read gradients. *)

val logits : t -> Nd.Tensor.t -> Nd.Tensor.t
(** Inference-only forward. *)

type step_stats = {
  loss : float;
  accuracy : float;
  grad_norm : float;  (** pre-clip global gradient norm; 0 for {!evaluate} *)
}

val train_step :
  ?clip_norm:float ->
  t ->
  Optimizer.t ->
  images:Nd.Tensor.t ->
  labels:int array ->
  step_stats
(** One supervised classification step: cross-entropy on the model
    output interpreted as logits [[B; C]].  With [clip_norm], gradients
    are rescaled by {!Optimizer.clip_global_norm} between backward and
    the optimizer step. *)

val evaluate : t -> images:Nd.Tensor.t -> labels:int array -> step_stats
