module Tensor = Nd.Tensor

type algo =
  | Sgd of { momentum : float; weight_decay : float }
  | Adam of { beta1 : float; beta2 : float; weight_decay : float }

type t = {
  algo : algo;
  mutable lr : float;
  mutable step_count : int;
  state : (int, Tensor.t * Tensor.t) Hashtbl.t;
      (* per-param (momentum/m, second-moment/v); SGD uses the first only *)
}

let sgd ?(momentum = 0.9) ?(weight_decay = 0.0) ~lr () =
  { algo = Sgd { momentum; weight_decay }; lr; step_count = 0; state = Hashtbl.create 16 }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(weight_decay = 0.0) ~lr () =
  { algo = Adam { beta1; beta2; weight_decay }; lr; step_count = 0; state = Hashtbl.create 16 }

let set_lr t lr = t.lr <- lr
let lr t = t.lr

let buffers t key shape =
  match Hashtbl.find_opt t.state key with
  | Some pair -> pair
  | None ->
      let pair = (Tensor.create shape, Tensor.create shape) in
      Hashtbl.add t.state key pair;
      pair

let step t ~params ~grads =
  if List.length params <> List.length grads then invalid_arg "Optimizer.step: arity";
  t.step_count <- t.step_count + 1;
  List.iteri
    (fun key (p, g) ->
      let pd = Tensor.unsafe_data p and gd = Tensor.unsafe_data g in
      let n = Array.length pd in
      match t.algo with
      | Sgd { momentum; weight_decay } ->
          let m, _ = buffers t key (Tensor.shape p) in
          let md = Tensor.unsafe_data m in
          for i = 0 to n - 1 do
            let grad = gd.(i) +. (weight_decay *. pd.(i)) in
            md.(i) <- (momentum *. md.(i)) +. grad;
            pd.(i) <- pd.(i) -. (t.lr *. md.(i))
          done
      | Adam { beta1; beta2; weight_decay } ->
          let m, v = buffers t key (Tensor.shape p) in
          let md = Tensor.unsafe_data m and vd = Tensor.unsafe_data v in
          let t1 = 1.0 -. (beta1 ** float_of_int t.step_count) in
          let t2 = 1.0 -. (beta2 ** float_of_int t.step_count) in
          for i = 0 to n - 1 do
            let grad = gd.(i) +. (weight_decay *. pd.(i)) in
            md.(i) <- (beta1 *. md.(i)) +. ((1.0 -. beta1) *. grad);
            vd.(i) <- (beta2 *. vd.(i)) +. ((1.0 -. beta2) *. grad *. grad);
            let mhat = md.(i) /. t1 and vhat = vd.(i) /. t2 in
            pd.(i) <- pd.(i) -. (t.lr *. mhat /. (sqrt vhat +. 1e-8))
          done)
    (List.combine params grads)

let global_norm grads =
  let sq =
    List.fold_left
      (fun acc g ->
        let gd = Tensor.unsafe_data g in
        let s = ref 0.0 in
        for i = 0 to Array.length gd - 1 do
          s := !s +. (gd.(i) *. gd.(i))
        done;
        acc +. !s)
      0.0 grads
  in
  sqrt sq

let clip_global_norm ~max_norm grads =
  if not (max_norm > 0.0) then invalid_arg "Optimizer.clip_global_norm: max_norm must be > 0";
  let norm = global_norm grads in
  (* A non-finite norm cannot be rescaled into range (inf * 0 = nan);
     leave the gradients alone and let the caller's sentinel abort. *)
  if Float.is_finite norm && norm > max_norm then begin
    let scale = max_norm /. (norm +. 1e-12) in
    List.iter
      (fun g ->
        let gd = Tensor.unsafe_data g in
        for i = 0 to Array.length gd - 1 do
          gd.(i) <- gd.(i) *. scale
        done)
      grads
  end;
  norm

let cosine_lr ~base ~total_steps step =
  let progress = float_of_int (min step total_steps) /. float_of_int (max 1 total_steps) in
  base *. 0.5 *. (1.0 +. cos (Float.pi *. progress))
