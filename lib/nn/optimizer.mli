(** In-place parameter optimizers (SGD with momentum, Adam).

    State (momentum buffers, Adam moments) is keyed by the position of
    the parameter in the list, so the same optimizer instance must
    always be stepped with the same parameter list. *)

type t

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> unit -> t
val adam : ?beta1:float -> ?beta2:float -> ?weight_decay:float -> lr:float -> unit -> t

val set_lr : t -> float -> unit
val lr : t -> float

val step : t -> params:Nd.Tensor.t list -> grads:Nd.Tensor.t list -> unit
(** Update parameters in place. *)

val global_norm : Nd.Tensor.t list -> float
(** L2 norm of all gradient elements taken together. *)

val clip_global_norm : max_norm:float -> Nd.Tensor.t list -> float
(** Scale all gradients in place so their global L2 norm is at most
    [max_norm]; returns the pre-clip norm.  A non-finite norm leaves
    the gradients untouched (rescaling NaN/Inf is meaningless) so the
    caller's sentinel can detect it.  Raises [Invalid_argument] unless
    [max_norm > 0]. *)

val cosine_lr : base:float -> total_steps:int -> int -> float
(** Cosine decay schedule value at the given step. *)
