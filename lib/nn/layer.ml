module Tensor = Nd.Tensor
module Tape = Grad.Tape
module Op = Grad.Op

type t = {
  name : string;
  params : Tensor.t list;
  apply : Tape.t -> Op.v list -> Op.v -> Op.v;
}

let take n l =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | x :: rest -> go (n - 1) (x :: acc) rest
    | [] -> invalid_arg "Layer.take"
  in
  go n [] l

let linear rng ~in_features ~out_features =
  let scale = sqrt (2.0 /. float_of_int in_features) in
  let w = Tensor.rand_normal rng ~scale [| in_features; out_features |] in
  let b = Tensor.create [| out_features |] in
  {
    name = Printf.sprintf "linear(%d->%d)" in_features out_features;
    params = [ w; b ];
    apply =
      (fun tape params x ->
        match params with
        | [ wv; bv ] ->
            let sh = Tensor.shape (Tape.data x) in
            let rank = Array.length sh in
            let lead = Array.sub sh 0 (rank - 1) in
            let rows = Array.fold_left ( * ) 1 lead in
            let x2 = Op.reshape tape x [| rows; in_features |] in
            let y = Op.einsum tape "bi,io->bo" [ x2; wv ] in
            let y = Op.add_bias tape y ~bias:bv ~axis:1 in
            Op.reshape tape y (Array.append lead [| out_features |])
        | _ -> invalid_arg "linear: params");
  }

let grouped_linear rng ~features ~groups =
  if features mod groups <> 0 then invalid_arg "grouped_linear: groups must divide features";
  let block = features / groups in
  let scale = sqrt (2.0 /. float_of_int block) in
  let w = Tensor.rand_normal rng ~scale [| groups; block; block |] in
  let b = Tensor.create [| features |] in
  {
    name = Printf.sprintf "grouped_linear(%d,g=%d)" features groups;
    params = [ w; b ];
    apply =
      (fun tape params x ->
        match params with
        | [ wv; bv ] ->
            let sh = Tensor.shape (Tape.data x) in
            let rank = Array.length sh in
            let lead = Array.sub sh 0 (rank - 1) in
            let rows = Array.fold_left ( * ) 1 lead in
            let xg = Op.reshape tape x [| rows; groups; block |] in
            let y = Op.einsum tape "rge,gef->rgf" [ xg; wv ] in
            let y = Op.reshape tape y [| rows; features |] in
            let y = Op.add_bias tape y ~bias:bv ~axis:1 in
            Op.reshape tape y (Array.append lead [| features |])
        | _ -> invalid_arg "grouped_linear: params");
  }

let relu =
  { name = "relu"; params = []; apply = (fun tape _ x -> Op.relu tape x) }

let global_avg_pool =
  { name = "gap"; params = []; apply = (fun tape _ x -> Op.global_avg_pool tape x) }

let flatten =
  {
    name = "flatten";
    params = [];
    apply =
      (fun tape _ x ->
        let sh = Tensor.shape (Tape.data x) in
        let rest = Tensor.numel (Tape.data x) / sh.(0) in
        Op.reshape tape x [| sh.(0); rest |]);
  }

let channel_affine rng ~channels =
  ignore rng;
  let g = Tensor.init [| channels |] (fun _ -> 1.0) in
  let b = Tensor.create [| channels |] in
  {
    name = Printf.sprintf "chaffine(%d)" channels;
    params = [ g; b ];
    apply =
      (fun tape params x ->
        match params with
        | [ gv; bv ] ->
            let sh = Tensor.shape (Tape.data x) in
            let gx =
              (* scale per channel: use einsum broadcast via reshape *)
              let rank = Array.length sh in
              if rank < 2 then invalid_arg "channel_affine: rank < 2";
              let spatial = Tensor.numel (Tape.data x) / (sh.(0) * sh.(1)) in
              let x3 = Op.reshape tape x [| sh.(0); sh.(1); spatial |] in
              let y = Op.einsum tape "ncs,c->ncs" [ x3; gv ] in
              let y = Op.add_bias tape y ~bias:bv ~axis:1 in
              Op.reshape tape y sh
            in
            gx
        | _ -> invalid_arg "channel_affine: params");
  }

let of_operator ?forward rng ~name compiled =
  let weights = Lower.Reference.init_weights compiled rng in
  let forward =
    match forward with
    | Some f -> f
    | None -> fun ~input ~weights -> Lower.Reference.forward compiled ~input ~weights
  in
  {
    name;
    params = weights;
    apply =
      (fun tape params x ->
        let input = Tape.data x in
        let weight_tensors = List.map Tape.data params in
        let output = forward ~input ~weights:weight_tensors in
        Tape.custom tape ~inputs:(x :: params) ~output ~vjp:(fun ~grad_out ->
            let gi, gws =
              Lower.Reference.backward compiled ~input ~weights:weight_tensors ~grad_out
            in
            Some gi :: List.map (fun g -> Some g) gws));
  }

let apply_chain layers tape params x =
  let v = ref x and remaining = ref params in
  List.iter
    (fun l ->
      let mine, rest = take (List.length l.params) !remaining in
      remaining := rest;
      v := l.apply tape mine !v)
    layers;
  !v

let sequential name layers =
  {
    name;
    params = List.concat_map (fun l -> l.params) layers;
    apply = (fun tape params x -> apply_chain layers tape params x);
  }

let residual name layers =
  {
    name;
    params = List.concat_map (fun l -> l.params) layers;
    apply =
      (fun tape params x ->
        let y = apply_chain layers tape params x in
        Op.add tape x y);
  }

let num_params l = List.fold_left (fun acc p -> acc + Tensor.numel p) 0 l.params
