(** Supervised training loops for the vision proxy task, guarded by
    numerical sentinels.

    Candidate operators can make a model numerically fragile: a
    miscompiled or badly scaled operator drives the loss to NaN/Inf or
    into sustained blow-up.  The sentinels catch both during training
    and abort with a typed {!outcome}, so search-side callers can
    quarantine the candidate ([Robust.Guard.Diverged]) instead of
    wasting the remaining epochs or reporting garbage accuracy. *)

type batch = { images : Nd.Tensor.t; labels : int array }

(** How a training run ended. *)
type outcome =
  | Completed
  | Aborted_non_finite of { epoch : int; step : int }
      (** a step produced a NaN/Inf loss (step numbered within the
          epoch, from 1) *)
  | Aborted_diverged of { epoch : int; loss : float; initial : float }
      (** epoch loss exceeded [divergence_factor * initial] for
          [divergence_patience] consecutive epochs *)
  | Aborted_cancelled of { epoch : int; step : int }
      (** the cancellation token tripped; [step] is the step (within
          [epoch], from 1) that was about to run when the trip was
          observed *)

val outcome_label : outcome -> string
(** [completed], [non_finite_loss], [diverged] or [cancelled]. *)

type sentinel = {
  check_finite : bool;  (** abort on a non-finite step loss *)
  divergence_factor : float;  (** the [k] in [loss > k * initial] *)
  divergence_patience : int;  (** consecutive over-threshold epochs *)
}

val default_sentinel : sentinel
(** Finite check on, factor 10, patience 2. *)

val sentinel :
  ?check_finite:bool -> ?divergence_factor:float -> ?divergence_patience:int -> unit -> sentinel
(** {!default_sentinel} with fields overridden.  Raises
    [Invalid_argument] unless [divergence_factor > 0] and
    [divergence_patience >= 1]. *)

type history = {
  epoch_losses : float list;  (** completed epochs only *)
  epoch_accuracies : float list;
  final_train_accuracy : float;
      (** from the last {e completed} epoch (0 if none completed) *)
  final_eval_accuracy : float;
  outcome : outcome;
  aborted : bool;  (** [outcome <> Completed] *)
}

val fit :
  ?log:(epoch:int -> loss:float -> accuracy:float -> unit) ->
  ?clip_norm:float ->
  ?sentinel:sentinel ->
  ?cancel:Robust.Cancel.t ->
  Model.t ->
  Optimizer.t ->
  epochs:int ->
  train:batch list ->
  eval:batch list ->
  history
(** Cosine learning-rate schedule over the full run.  [clip_norm]
    applies global gradient-norm clipping on every step
    ({!Optimizer.clip_global_norm}).  The [sentinel] (default
    {!default_sentinel}) may abort the run early; the divergence
    baseline is the first completed epoch's mean loss.  [cancel] is
    polled before every training step: a trip ends the run with
    [Aborted_cancelled] (no exception), keeping the stats of every
    completed epoch — so a graceful shutdown still reports the partial
    history. *)

val evaluate : Model.t -> batch list -> float
