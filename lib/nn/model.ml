module Tensor = Nd.Tensor
module Tape = Grad.Tape
module Op = Grad.Op

type t = { root : Layer.t }

let of_layer root = { root }
let params t = t.root.Layer.params
let num_params t = Layer.num_params t.root

let forward t tape x =
  let param_vars = List.map (Tape.var tape) t.root.Layer.params in
  let y = t.root.Layer.apply tape param_vars x in
  (y, param_vars)

let logits t input =
  let tape = Tape.create () in
  let x = Tape.constant tape input in
  let y, _ = forward t tape x in
  Tape.data y

type step_stats = { loss : float; accuracy : float; grad_norm : float }

let train_step ?clip_norm t opt ~images ~labels =
  let tape = Tape.create () in
  let x = Tape.constant tape images in
  let y, param_vars = forward t tape x in
  let loss = Op.cross_entropy tape y ~labels in
  Tape.backward tape loss;
  let grads = List.map Tape.grad param_vars in
  let grad_norm =
    match clip_norm with
    | Some max_norm -> Optimizer.clip_global_norm ~max_norm grads
    | None -> Optimizer.global_norm grads
  in
  Optimizer.step opt ~params:(params t) ~grads;
  { loss = Tensor.flat_get (Tape.data loss) 0; accuracy = Op.accuracy y ~labels; grad_norm }

let evaluate t ~images ~labels =
  let tape = Tape.create () in
  let x = Tape.constant tape images in
  let y, _ = forward t tape x in
  let loss = Op.cross_entropy tape y ~labels in
  { loss = Tensor.flat_get (Tape.data loss) 0; accuracy = Op.accuracy y ~labels; grad_norm = 0.0 }
