type t = { fd : Unix.file_descr; buf : Buffer.t }

let connect ?(timeout = 5.0) path =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; buf = Buffer.create 256 }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (* The daemon may not have bound yet (ENOENT) or may still be
           calling listen (ECONNREFUSED): retry until the deadline. *)
        if Unix.gettimeofday () >= deadline then
          Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))
        else begin
          Unix.sleepf 0.02;
          attempt ()
        end
  in
  attempt ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let data = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length data in
  let rec go written =
    if written >= n then Ok ()
    else
      match Unix.write t.fd data written (n - written) with
      | w -> go (written + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go written
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "send: %s" (Unix.error_message e))
  in
  go 0

(* Pull the first complete line out of the receive buffer, if any. *)
let buffered_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub s (i + 1) (String.length s - i - 1));
      Some line

let recv_line ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match buffered_line t with
    | Some line -> Ok line
    | None ->
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "timeout"
        else if Buffer.length t.buf > Protocol.max_line then Error "line too long"
        else (
          match Unix.select [ t.fd ] [] [] remaining with
          | exception Unix.Unix_error (EINTR, _, _) -> go ()
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read t.fd chunk 0 (Bytes.length chunk) with
              | exception Unix.Unix_error (EINTR, _, _) -> go ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Printf.sprintf "recv: %s" (Unix.error_message e))
              | 0 -> if Buffer.length t.buf > 0 then Error "eof mid-line" else Error "eof"
              | n ->
                  Buffer.add_subbytes t.buf chunk 0 n;
                  go ()))
  in
  go ()

let ( let* ) r f = Result.bind r f

let call ?(timeout = 10.0) t request =
  let deadline = Unix.gettimeofday () +. timeout in
  let* () = send_line t (Protocol.render_request request) in
  let rec await () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then Error "timeout"
    else
      let* line = recv_line ~timeout:remaining t in
      let* id, response = Protocol.parse_response line in
      if id = request.Protocol.rq_id then Ok response else await ()
  in
  await ()
