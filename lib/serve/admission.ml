type config = { max_depth : int; max_bytes : int; retry_after : float }

let default_config = { max_depth = 64; max_bytes = 4 * 1024 * 1024; retry_after = 0.05 }

type 'a t = {
  cfg : config;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable bytes : int;  (* admitted, not yet completed *)
  mutable live : int;  (* admitted, not yet completed (count) *)
  mutable shed : int;
  mutable admitted : int;
  mutable closed : bool;
  mutable discarded : bool;
}

let create cfg =
  {
    cfg;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    bytes = 0;
    live = 0;
    shed = 0;
    admitted = 0;
    closed = false;
    discarded = false;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

type shed = { sh_retry_after : float; sh_depth : int; sh_bytes : int }

let offer t ~bytes item =
  locked t (fun () ->
      if
        t.closed
        || Queue.length t.queue >= t.cfg.max_depth
        || t.bytes + bytes > t.cfg.max_bytes
      then begin
        t.shed <- t.shed + 1;
        Error
          {
            sh_retry_after = t.cfg.retry_after;
            sh_depth = Queue.length t.queue;
            sh_bytes = t.bytes;
          }
      end
      else begin
        t.admitted <- t.admitted + 1;
        t.bytes <- t.bytes + bytes;
        t.live <- t.live + 1;
        Queue.push item t.queue;
        Condition.signal t.nonempty;
        Ok ()
      end)

let take t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let complete t ~bytes =
  locked t (fun () ->
      t.bytes <- max 0 (t.bytes - bytes);
      t.live <- max 0 (t.live - 1))

let close ?(discard = false) t =
  locked t (fun () ->
      t.closed <- true;
      if discard && not t.discarded then begin
        t.discarded <- true;
        (* Dropped items keep their byte accounting releasable by the
           server's own cleanup; at hard stop nobody reads the gauges
           again, so zero them outright. *)
        Queue.clear t.queue;
        t.bytes <- 0;
        t.live <- 0
      end;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.queue)
let in_flight t = locked t (fun () -> t.live)
let inflight_bytes t = locked t (fun () -> t.bytes)
let shed_count t = locked t (fun () -> t.shed)
let admitted_count t = locked t (fun () -> t.admitted)
let idle t = locked t (fun () -> Queue.is_empty t.queue && t.live = 0)
