type verb = Eval | Lint | Search | Status | Ping | Drain

let verb_label = function
  | Eval -> "eval"
  | Lint -> "lint"
  | Search -> "search"
  | Status -> "status"
  | Ping -> "ping"
  | Drain -> "drain"

let verb_of_label = function
  | "eval" -> Some Eval
  | "lint" -> Some Lint
  | "search" -> Some Search
  | "status" -> Some Status
  | "ping" -> Some Ping
  | "drain" -> Some Drain
  | _ -> None

type request = { rq_id : string; rq_verb : verb; rq_params : (string * string) list }

type response =
  | Resp_ok of (string * string) list
  | Resp_error of { err_kind : string; err_detail : string; err_retry_after : float option }

let max_line = 65536

(* Percent-encoding keeps every value a single printable token, so the
   line framing never has to quote: a space, newline, '%' or any
   non-printable byte inside a value becomes %XX. *)
let encode s =
  let plain c = c > ' ' && c <= '~' && c <> '%' in
  if String.for_all plain s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if plain c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
      s;
    Buffer.contents buf
  end

let decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] <> '%' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 2 >= n then Error "truncated %-escape"
    else
      match (hex s.[i + 1], hex s.[i + 2]) with
      | Some h, Some l ->
          Buffer.add_char buf (Char.chr ((h * 16) + l));
          go (i + 3)
      | _ -> Error (Printf.sprintf "bad %%-escape %S" (String.sub s i 3))
  in
  go 0

let is_token s =
  String.length s > 0 && String.for_all (fun c -> c > ' ' && c <= '~' && c <> '=') s

let render_params params =
  List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (encode v)) params |> String.concat ""

let render_request r =
  Printf.sprintf "%s %s%s" r.rq_id (verb_label r.rq_verb) (render_params r.rq_params)

let render_response ~id = function
  | Resp_ok params -> Printf.sprintf "%s ok%s" id (render_params params)
  | Resp_error { err_kind; err_detail; err_retry_after } ->
      Printf.sprintf "%s error kind=%s detail=%s%s" id err_kind (encode err_detail)
        (match err_retry_after with
        | None -> ""
        | Some s -> Printf.sprintf " retry-after=%g" s)

let ( let* ) r f = Result.bind r f

(* Split "k=v" at the first '=': values may contain literal '='
   (percent-encoding only guarantees no spaces). *)
let parse_param tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "bad parameter %S (expected key=value)" tok)
  | Some i ->
      let k = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      if not (is_token k) then Error (Printf.sprintf "bad parameter key %S" k)
      else
        let* v = decode v in
        Ok (k, v)

let parse_params toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      let* p = parse_param tok in
      Ok (p :: acc))
    (Ok []) toks
  |> Result.map List.rev

let tokens line =
  String.split_on_char ' ' (String.trim line) |> List.filter (fun t -> t <> "")

let parse_request line =
  if String.length line > max_line then Error "line too long"
  else
    match tokens line with
    | [] -> Error "empty request"
    | [ _ ] -> Error "missing verb"
    | id :: verb :: params ->
        if not (is_token id) then Error (Printf.sprintf "bad request id %S" id)
        else
          let* verb =
            match verb_of_label verb with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "unknown verb %S" verb)
          in
          let* params = parse_params params in
          Ok { rq_id = id; rq_verb = verb; rq_params = params }

let parse_response line =
  if String.length line > max_line then Error "line too long"
  else
    match tokens line with
    | id :: "ok" :: params ->
        let* params = parse_params params in
        Ok (id, Resp_ok params)
    | id :: "error" :: params ->
        let* params = parse_params params in
        let find k = List.assoc_opt k params in
        let* kind =
          match find "kind" with Some k -> Ok k | None -> Error "error response without kind"
        in
        let detail = Option.value ~default:"" (find "detail") in
        let* retry_after =
          match find "retry-after" with
          | None -> Ok None
          | Some s -> (
              match float_of_string_opt s with
              | Some f -> Ok (Some f)
              | None -> Error (Printf.sprintf "bad retry-after %S" s))
        in
        Ok (id, Resp_error { err_kind = kind; err_detail = detail; err_retry_after = retry_after })
    | _ -> Error (Printf.sprintf "bad response line %S" line)

let param r key =
  (* Last occurrence wins so callers can layer overrides. *)
  List.fold_left (fun acc (k, v) -> if k = key then Some v else acc) None r.rq_params

let int_param r key ~default =
  match param r key with
  | None -> Ok default
  | Some s -> (
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "parameter %s: expected an integer, got %S" key s))

let float_param r key ~default =
  match param r key with
  | None -> Ok default
  | Some s -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> Ok v
      | Some _ -> Error (Printf.sprintf "parameter %s: must be finite" key)
      | None -> Error (Printf.sprintf "parameter %s: expected a number, got %S" key s))
