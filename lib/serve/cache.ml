type entry = {
  e_key : string;
  e_verdict : string;
  e_flops : int;
  e_params : int;
  e_elements : int;
  e_checksum : float;
  e_cold_seconds : float;
  e_spec_seconds : float;
      (* specialized-kernel cold time; negative when the evaluation did
         not run a specialized kernel *)
}

(* LRU bookkeeping: a monotonically increasing use-stamp per entry;
   eviction scans for the minimum.  O(capacity) per eviction is fine at
   the capacities a daemon runs (hundreds to a few thousand entries)
   and keeps the structure a single hashtable. *)
type slot = { s_entry : entry; mutable s_stamp : int }

type t = {
  mutex : Mutex.t;
  table : (string, slot) Hashtbl.t;
  cap : int;
  mutable clock : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable evict_count : int;
  (* persistence *)
  backing : string option;
  every : int;
  mutable pending : int;
  mutable write_count : int;
}

let make ?(capacity = 1024) ?backing ?(every = 16) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    cap = max 1 capacity;
    clock = 0;
    hit_count = 0;
    miss_count = 0;
    evict_count = 0;
    backing;
    every = max 1 every;
    pending = 0;
    write_count = 0;
  }

let create ?capacity () = make ?capacity ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let size t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap
let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)
let evictions t = locked t (fun () -> t.evict_count)
let writes t = locked t (fun () -> t.write_count)
let path t = t.backing

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some slot ->
          t.clock <- t.clock + 1;
          slot.s_stamp <- t.clock;
          t.hit_count <- t.hit_count + 1;
          Some slot.s_entry
      | None ->
          t.miss_count <- t.miss_count + 1;
          None)

let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best <= slot.s_stamp -> acc
        | _ -> Some (key, slot.s_stamp))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evict_count <- t.evict_count + 1
  | None -> ()

(* Least-recent-first, so a loader replaying [put]s ends with the same
   recency order the snapshot was taken at. *)
let snapshot_locked t =
  Hashtbl.fold (fun _ slot acc -> slot :: acc) t.table []
  |> List.sort (fun a b -> compare a.s_stamp b.s_stamp)
  |> List.map (fun s -> s.s_entry)

(* --- Snapshot format ------------------------------------------------------- *)

let header = "syno-serve-cache v1"

let entry_line e =
  (* The key travels percent-encoded: signatures contain characters the
     space-separated line format cannot carry raw. *)
  if e.e_spec_seconds < 0.0 then
    Printf.sprintf
      "entry: key %s verdict %s flops %d params %d elements %d checksum %h cold %h"
      (Protocol.encode e.e_key) e.e_verdict e.e_flops e.e_params e.e_elements e.e_checksum
      e.e_cold_seconds
  else
    Printf.sprintf
      "entry: key %s verdict %s flops %d params %d elements %d checksum %h cold %h spec %h"
      (Protocol.encode e.e_key) e.e_verdict e.e_flops e.e_params e.e_elements e.e_checksum
      e.e_cold_seconds e.e_spec_seconds

let render entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "entries: %d\n" (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_string buf (entry_line e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let to_string t = locked t (fun () -> render (snapshot_locked t))

type error =
  | Io of string
  | Bad_header of string
  | Truncated of { expected : int; found : int }
  | Corrupt of string

let string_of_error = function
  | Io msg -> "cannot read cache snapshot: " ^ msg
  | Bad_header line ->
      Printf.sprintf "bad cache snapshot header %S (expected %S)" line header
  | Truncated { expected; found } ->
      Printf.sprintf "truncated cache snapshot: header declares %d entries, found %d" expected
        found
  | Corrupt msg -> "corrupt cache snapshot: " ^ msg

(* Atomic + durable, same recipe as [Search.Checkpoint.save]: a crash
   at any instant leaves either the old snapshot or the new one, both
   fully fsynced. *)
let save_entries ~path entries =
  let tmp = path ^ ".tmp" in
  let data = render entries in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.of_string data in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done;
      Unix.fsync fd);
  Sys.rename tmp path;
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
      (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
      (try Unix.close dirfd with Unix.Unix_error _ -> ())

let save ~path t = locked t (fun () -> save_entries ~path (snapshot_locked t))

let ( let* ) r f = Result.bind r f

let parse_entry line =
  let bad () = Error (Corrupt (Printf.sprintf "bad entry line %S" line)) in
  (* [spec] is optional for backward compatibility: snapshots written
     before specialization existed parse with [e_spec_seconds = -1.0]
     (not specialized). *)
  let build k v f p el c cold spec =
    match
      ( Protocol.decode k,
        int_of_string_opt f,
        int_of_string_opt p,
        int_of_string_opt el,
        float_of_string_opt c,
        float_of_string_opt cold,
        spec )
    with
    | Ok key, Some flops, Some params, Some elements, Some checksum, Some cold_s, Some spec_s
      ->
        Ok
          {
            e_key = key;
            e_verdict = v;
            e_flops = flops;
            e_params = params;
            e_elements = elements;
            e_checksum = checksum;
            e_cold_seconds = cold_s;
            e_spec_seconds = spec_s;
          }
    | _ -> bad ()
  in
  match String.split_on_char ' ' (String.trim line) with
  | [ "entry:"; "key"; k; "verdict"; v; "flops"; f; "params"; p; "elements"; el;
      "checksum"; c; "cold"; cold ] ->
      build k v f p el c cold (Some (-1.0))
  | [ "entry:"; "key"; k; "verdict"; v; "flops"; f; "params"; p; "elements"; el;
      "checksum"; c; "cold"; cold; "spec"; spec ] ->
      build k v f p el c cold (float_of_string_opt spec)
  | _ -> bad ()

let put_locked t e =
  t.clock <- t.clock + 1;
  (match Hashtbl.find_opt t.table e.e_key with
  | Some _ -> Hashtbl.replace t.table e.e_key { s_entry = e; s_stamp = t.clock }
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru_locked t;
      Hashtbl.add t.table e.e_key { s_entry = e; s_stamp = t.clock })

let write_locked t =
  match t.backing with
  | None -> ()
  | Some path ->
      save_entries ~path (snapshot_locked t);
      t.write_count <- t.write_count + 1;
      t.pending <- 0

let put t e =
  locked t (fun () ->
      put_locked t e;
      match t.backing with
      | None -> ()
      | Some _ ->
          t.pending <- t.pending + 1;
          if t.pending >= t.every then write_locked t)

let flush t =
  locked t (fun () ->
      match t.backing with
      | None -> ()
      | Some _ -> if t.pending > 0 || t.write_count = 0 then write_locked t)

let of_string_result ?capacity text =
  match String.split_on_char '\n' text with
  | [] | [ "" ] -> Error (Corrupt "empty cache snapshot")
  | first :: rest ->
      if String.trim first <> header then Error (Bad_header first)
      else
        let declared =
          List.find_map
            (fun line ->
              match String.split_on_char ' ' (String.trim line) with
              | [ "entries:"; n ] -> int_of_string_opt n
              | _ -> None)
            rest
        in
        let entry_lines =
          List.filter
            (fun l ->
              let l = String.trim l in
              String.length l >= 6 && String.sub l 0 6 = "entry:")
            rest
        in
        let* entries =
          List.fold_left
            (fun acc line ->
              let* acc = acc in
              let* e = parse_entry line in
              Ok (e :: acc))
            (Ok []) entry_lines
          |> Result.map List.rev
        in
        let* () =
          match declared with
          | Some expected when expected <> List.length entries ->
              Error (Truncated { expected; found = List.length entries })
          | Some _ | None -> Ok ()
        in
        let t = make ?capacity () in
        List.iter (fun e -> put_locked t e) entries;
        Ok t

type open_report = { or_loaded : int; or_quarantined : (string * error) option }

let open_file ?capacity ?every path =
  let fresh report = (make ?capacity ~backing:path ?every (), report) in
  if not (Sys.file_exists path) then fresh { or_loaded = 0; or_quarantined = None }
  else
    let text =
      match open_in_bin path with
      | exception Sys_error msg -> Error (Io msg)
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    in
    match Result.bind text (of_string_result ?capacity) with
    | Ok loaded ->
        let t = make ?capacity ~backing:path ?every () in
        List.iter (fun e -> put_locked t e) (locked loaded (fun () -> snapshot_locked loaded));
        (t, { or_loaded = Hashtbl.length t.table; or_quarantined = None })
    | Error err ->
        (* Quarantine, never die: a damaged snapshot costs warmth, not
           availability.  Best-effort — if even the rename fails the
           file is simply left behind and overwritten by the next
           flush. *)
        let quarantine = path ^ ".corrupt" in
        let moved =
          match Sys.rename path quarantine with
          | () -> Some (quarantine, err)
          | exception Sys_error _ -> Some (path, err)
        in
        fresh { or_loaded = 0; or_quarantined = moved }
