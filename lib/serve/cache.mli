(** The daemon's LRU result cache, persisted crash-tolerantly.

    The paper's economics are synthesize-once/reuse-forever: lowering,
    static verification, differential validation and a reference
    forward pass cost milliseconds to seconds per operator, while a
    cache hit is a hash lookup.  The cache memoizes the {e outcome} of
    that pipeline — verdict, cost accounting, output checksum — keyed
    by [(operator signature, valuation)], so a repeated request never
    re-runs tensor work.

    Persistence follows the Checkpoint/Corpus durability recipe: a
    text snapshot with a declared entry count, hex-float exact values,
    written atomically (temp file, fsync, rename, best-effort
    directory fsync) on a write cadence and at flush.  Load errors are
    typed; a damaged file is quarantined to [path ^ ".corrupt"] and
    the cache starts empty — {e never fatal}.  A SIGKILLed daemon
    restarts warm from its last snapshot.

    All operations are thread-safe (one mutex); worker domains hit the
    cache concurrently. *)

type entry = {
  e_key : string;  (** [signature ^ "@" ^ valuation-token] *)
  e_verdict : string;  (** ["proved"] or ["padded"] (static bounds) *)
  e_flops : int;
  e_params : int;
  e_elements : int;  (** output elements differentially compared *)
  e_checksum : float;  (** reference forward-pass output sum *)
  e_cold_seconds : float;  (** wall time of the original cold evaluation *)
  e_spec_seconds : float;
      (** wall time of the certified specialized kernel's forward pass
          during that cold evaluation; negative when specialization was
          off or declined.  Snapshots written before this field existed
          load with [-1.0]. *)
}

type t

val create : ?capacity:int -> unit -> t
(** In-memory only (no backing file).  [capacity] (default 1024) is
    the entry bound; inserting past it evicts the least recently used
    entry. *)

val find : t -> string -> entry option
(** Bumps the entry's recency. *)

val put : t -> entry -> unit
(** Insert or refresh; counts toward the write cadence when the cache
    is file-backed. *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** {1 Persistence} *)

type error =
  | Io of string
  | Bad_header of string
  | Truncated of { expected : int; found : int }
  | Corrupt of string

val string_of_error : error -> string

val to_string : t -> string
(** Snapshot in least-recent-first order, so replaying [put]s at load
    time reconstructs the recency order exactly. *)

val of_string_result : ?capacity:int -> string -> (t, error) result

val save : path:string -> t -> unit
(** Atomic + durable (temp, fsync, rename, directory fsync). *)

type open_report = {
  or_loaded : int;  (** entries restored from an existing snapshot *)
  or_quarantined : (string * error) option;
      (** where a damaged snapshot was moved and why it failed *)
}

val open_file : ?capacity:int -> ?every:int -> string -> t * open_report
(** Bind the cache to [path].  A missing file is an empty cache; a
    damaged one is quarantined aside.  [every] (default 16) is the
    number of [put]s between automatic atomic snapshots. *)

val flush : t -> unit
(** Write pending entries now (and an initial snapshot for a fresh
    file-backed cache).  No-op for in-memory caches. *)

val writes : t -> int
val path : t -> string option
