module Cancel = Robust.Cancel
module Guard = Robust.Guard
module Graph = Pgraph.Graph
module Differential = Validate.Differential
module Corpus = Validate.Corpus
module Verify = Analysis.Verify

type config = {
  socket_path : string;
  cache_path : string option;
  cache_capacity : int;
  cache_every : int;
  corpus_path : string option;
  max_depth : int;
  max_inflight_bytes : int;
  retry_after : float;
  default_deadline : float;
  max_deadline : float;
  workers : int;
  max_connections : int;
  drain_grace : float;
  guard : Robust.Guard.policy;
  specialize : Syno.Api.specialize_mode;
}

let default_config ~socket =
  {
    socket_path = socket;
    cache_path = None;
    cache_capacity = 1024;
    cache_every = 16;
    corpus_path = None;
    max_depth = 64;
    max_inflight_bytes = 4 * 1024 * 1024;
    retry_after = 0.05;
    default_deadline = 10.0;
    max_deadline = 60.0;
    workers = 2;
    max_connections = 64;
    drain_grace = 5.0;
    (* One quick retry with seeded-jittered backoff: transient failures
       get a second chance without workers retrying in lockstep. *)
    guard = Guard.policy ~retries:1 ~backoff:0.005 ~jitter:0.5 ();
    specialize = `Auto;
  }

(* --- Request handling (runs on worker domains) ----------------------------- *)

type deps = {
  d_cache : Cache.t;
  d_corpus : Corpus.t option;
  d_guard : Guard.policy;
  d_specialize : Syno.Api.specialize_mode;
}

type job = {
  j_conn : int;
  j_request : Protocol.request;
  j_bytes : int;
  j_deadline : float;  (* absolute *)
  j_token : Cancel.t;
}

let error ?retry_after kind detail =
  Protocol.Resp_error { err_kind = kind; err_detail = detail; err_retry_after = retry_after }

let bad_request detail = error "bad_request" detail

let kind_detail = function
  | Guard.Eval_error m | Guard.Over_budget m | Guard.Backend_mismatch m | Guard.Diverged m
  | Guard.Static_violation m | Guard.Counterexample m ->
      m
  | Guard.Non_finite -> "non-finite result"
  | Guard.Timeout -> "evaluation budget exceeded"
  | Guard.Injected -> "injected fault"

let kind_error k = error (Guard.kind_label k) (kind_detail k)

let timeout_error deadline =
  error "timeout" (Printf.sprintf "deadline %h exceeded" deadline)

let cancelled_error = function
  | Cancel.Deadline_exceeded d -> timeout_error d
  | Cancel.Cancelled_by who -> error "cancelled" ("cancelled by " ^ who)

let ( let* ) r f = Result.bind r f

let resolve_operator rq =
  match (Protocol.param rq "op", Protocol.param rq "trace") with
  | Some name, _ -> (
      match List.find_opt (fun e -> e.Syno.Zoo.name = name) Syno.Zoo.all with
      | Some e -> Ok e.Syno.Zoo.operator
      | None -> Error (Printf.sprintf "unknown zoo operator %S" name))
  | None, Some trace -> Pgraph.Trace_io.of_string ~allow_strided:true trace
  | None, None -> Error "missing op= or trace="

(* The request's shape point, also rendered as a single token so it can
   extend the cache key: the same operator at two shapes is two cached
   outcomes. *)
let resolve_valuation rq =
  let dim key default =
    let* v = Protocol.int_param rq key ~default in
    if v >= 1 then Ok v else Error (Printf.sprintf "parameter %s: must be >= 1" key)
  in
  let* n = dim "n" 1 in
  let* c_in = dim "c_in" 8 in
  let* c_out = dim "c_out" 8 in
  let* hw = dim "hw" 8 in
  let* k = dim "k" 3 in
  let* g = dim "g" 2 in
  let* s = dim "s" 2 in
  let token = Printf.sprintf "n%d.ci%d.co%d.hw%d.k%d.g%d.s%d" n c_in c_out hw k g s in
  Ok (Syno.Zoo.Vars.conv_valuation ~n ~c_in ~c_out ~hw ~k ~g ~s (), token)

(* Per-request seeded fault injection (the [--fault-rate] tradition):
   how tests and the bench poison an operator on demand — a synthetic
   miscompile the differential validator catches, distilled into the
   corpus like a real one. *)
let resolve_fault rq =
  match Protocol.param rq "fault_backend" with
  | None -> Ok None
  | Some label -> (
      match Differential.backend_of_label label with
      | None -> Error (Printf.sprintf "parameter fault_backend: unknown backend %S" label)
      | Some backend ->
          let* rate = Protocol.float_param rq "fault_rate" ~default:1.0 in
          let* () =
            if rate >= 0.0 && rate <= 1.0 then Ok ()
            else Error "parameter fault_rate: must be in [0, 1]"
          in
          let* seed = Protocol.int_param rq "fault_seed" ~default:0 in
          Ok (Some (Differential.fault ~seed ~rate backend)))

(* The cold pipeline: static bounds -> differential cross-check ->
   reference forward checksum.  Any typed rejection is distilled into
   the corpus (when one is attached) before being reported, so the
   *next* request for the same operator is rejected by cheap replay. *)
let eval_cold deps op valuation ~signature ~fault ~token ~remaining =
  let stash = ref None in
  let policy = { deps.d_guard with timeout = Some remaining } in
  let outcome =
    Guard.run ~policy ~cancel:token ~key:signature (fun gtoken ->
        let verdict =
          match Verify.program_opt op valuation with
          | None -> raise (Guard.Reject (Guard.Eval_error "not instantiable under valuation"))
          | Some (Verify.Violation d) ->
              Option.iter
                (fun c -> ignore (Corpus.add c (Corpus.of_static op valuation d)))
                deps.d_corpus;
              raise (Guard.Reject (Guard.Static_violation (Verify.diagnostic_to_string d)))
          | Some Verify.Proved -> "proved"
          | Some (Verify.Padded _) -> "padded"
        in
        Cancel.check gtoken;
        let dconfig = Differential.config ?fault () in
        let elements =
          match Differential.check_full ~config:dconfig op [ valuation ] with
          | Error failure ->
              Option.iter
                (fun c ->
                  ignore
                    (Corpus.add c
                       (Corpus.of_differential ~tolerance:dconfig.Differential.tolerance op
                          failure)))
                deps.d_corpus;
              raise (Guard.Reject failure.Differential.fl_kind)
          | Ok report -> report.Differential.rep_elements
        in
        Cancel.check gtoken;
        let compiled = Lower.Reference.compile op valuation in
        let rng = Nd.Rng.create ~seed:(Differential.derive_seed ~seed:0 signature) in
        let weights = Lower.Reference.init_weights compiled rng in
        let input =
          Nd.Tensor.rand_uniform rng ~lo:(-1.0) ~hi:1.0 (Lower.Reference.input_shape compiled)
        in
        let out = Lower.Reference.forward compiled ~input ~weights in
        let checksum = Nd.Tensor.sum out in
        Cancel.check gtoken;
        (* The proof-to-speed pipeline: certificate, translation
           validation, one timed specialized forward pass on the same
           data.  [`Auto] declines quietly; [`On] turns a certification
           failure into a typed rejection. *)
        let spec_seconds =
          match deps.d_specialize with
          | `Off -> -1.0
          | (`Auto | `On) as mode -> (
              match Syno.Api.specialize_operator ~mode op valuation with
              | Ok None -> -1.0
              | Error k -> raise (Guard.Reject k)
              | Ok (Some sp) ->
                  let t0 = Unix.gettimeofday () in
                  let _specialized =
                    Lower.Specialize.forward ~cancel:gtoken sp ~input ~weights
                  in
                  Unix.gettimeofday () -. t0)
        in
        stash :=
          Some
            ( verdict,
              Pgraph.Flops.naive_flops op valuation,
              Pgraph.Flops.params op valuation,
              elements,
              checksum,
              spec_seconds );
        checksum)
  in
  match (outcome.Guard.result, !stash) with
  | Ok _, Some r -> Ok r
  | Ok _, None -> Error (Guard.Eval_error "evaluation produced no result")
  | Error k, _ -> Error k

let float_value v = Printf.sprintf "%h" v

let handle_eval deps job =
  let rq = job.j_request in
  let started = Unix.gettimeofday () in
  let finish params =
    let micros = int_of_float ((Unix.gettimeofday () -. started) *. 1e6) in
    Protocol.Resp_ok (params @ [ ("micros", string_of_int micros) ])
  in
  match
    let* op = resolve_operator rq in
    let* valuation, vtoken = resolve_valuation rq in
    let* fault = resolve_fault rq in
    let* use_cache = Protocol.int_param rq "cache" ~default:1 in
    Ok (op, valuation, vtoken, fault, use_cache <> 0)
  with
  | Error msg -> bad_request msg
  | Ok (op, valuation, vtoken, fault, use_cache) -> (
      let signature = Graph.operator_signature op in
      let key = signature ^ "@" ^ vtoken in
      let entry_params (e : Cache.entry) cached =
        [
          ("verdict", e.Cache.e_verdict);
          ("flops", string_of_int e.Cache.e_flops);
          ("params", string_of_int e.Cache.e_params);
          ("elements", string_of_int e.Cache.e_elements);
          ("checksum", float_value e.Cache.e_checksum);
          ("cold", float_value e.Cache.e_cold_seconds);
          ("spec", float_value e.Cache.e_spec_seconds);
          ("cached", if cached then "1" else "0");
        ]
      in
      match if use_cache then Cache.find deps.d_cache key else None with
      | Some e -> finish (entry_params e true)
      | None -> (
          (* Replay against the counterexample corpus first: a known-bad
             operator is rejected in O(1) with no tensor work at all. *)
          let replayed =
            match deps.d_corpus with
            | Some c -> Corpus.replay c op
            | None -> Ok ()
          in
          match replayed with
          | Error k -> kind_error k
          | Ok () -> (
              let remaining = job.j_deadline -. Unix.gettimeofday () in
              if remaining <= 0.0 then timeout_error job.j_deadline
              else
                match
                  eval_cold deps op valuation ~signature ~fault ~token:job.j_token ~remaining
                with
                | Error k -> kind_error k
                | Ok (verdict, flops, params, elements, checksum, spec_seconds) ->
                    let entry =
                      {
                        Cache.e_key = key;
                        e_verdict = verdict;
                        e_flops = flops;
                        e_params = params;
                        e_elements = elements;
                        e_checksum = checksum;
                        e_cold_seconds = Unix.gettimeofday () -. started;
                        e_spec_seconds = spec_seconds;
                      }
                    in
                    if use_cache then Cache.put deps.d_cache entry;
                    finish (entry_params entry false))))

let handle_lint _deps job =
  let rq = job.j_request in
  match
    let* op = resolve_operator rq in
    let* valuation, _ = resolve_valuation rq in
    Ok (op, valuation)
  with
  | Error msg -> bad_request msg
  | Ok (op, valuation) ->
      let findings = Analysis.Lint.check ~valuations:[ valuation ] op in
      let errors = Analysis.Lint.errors findings in
      Protocol.Resp_ok
        [
          ("count", string_of_int (List.length findings));
          ("errors", string_of_int (List.length errors));
          ( "findings",
            String.concat ";" (List.map Analysis.Lint.finding_to_string findings) );
        ]

let handle_search _deps job =
  let rq = job.j_request in
  match
    let* iterations = Protocol.int_param rq "iterations" ~default:64 in
    let* max_prims = Protocol.int_param rq "max_prims" ~default:4 in
    let* seed = Protocol.int_param rq "seed" ~default:0 in
    let* top = Protocol.int_param rq "top" ~default:1 in
    if iterations < 1 then Error "parameter iterations: must be >= 1"
    else if max_prims < 1 then Error "parameter max_prims: must be >= 1"
    else Ok (min iterations 1_000_000, max_prims, seed, max 1 top)
  with
  | Error msg -> bad_request msg
  | Ok (iterations, max_prims, seed, top) -> (
      let run =
        Syno.Api.search_conv_operators_run ~iterations ~max_prims ~domains:1
          ~cancel:job.j_token
          ~rng:(Nd.Rng.create ~seed)
          ~valuations:Syno.Api.default_search_valuations ()
      in
      let candidates = run.Syno.Api.candidates in
      match candidates with
      | [] -> Protocol.Resp_ok [ ("candidates", "0") ]
      | best :: _ ->
          Protocol.Resp_ok
            [
              ("candidates", string_of_int (List.length candidates));
              ("top", string_of_int (min top (List.length candidates)));
              ("best", best.Syno.Api.signature);
              ("reward", float_value best.Syno.Api.reward);
              ("flops", string_of_int best.Syno.Api.flops);
            ])

(* Total containment: whatever a request does — bad params, a poisoned
   operator, an exception deep in a backend — the worker answers with a
   typed response and takes the next job.  The process never dies for a
   request. *)
let handle deps job =
  let now = Unix.gettimeofday () in
  if now >= job.j_deadline then timeout_error job.j_deadline
  else
    try
      match job.j_request.Protocol.rq_verb with
      | Protocol.Eval -> handle_eval deps job
      | Protocol.Lint -> handle_lint deps job
      | Protocol.Search -> handle_search deps job
      | Protocol.Status | Protocol.Ping | Protocol.Drain ->
          bad_request "verb handled inline"  (* unreachable: dispatched inline *)
    with
    | Cancel.Cancelled reason -> cancelled_error reason
    | e -> error "eval_error" (Printexc.to_string e)

(* --- The I/O loop ---------------------------------------------------------- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_in : Buffer.t;
  c_out : Buffer.t;
  mutable c_pending : int;  (* admitted jobs not yet answered *)
  mutable c_eof : bool;
}

let bind_listen path =
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let bind () =
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 128;
    Unix.set_nonblock sock;
    Ok sock
  in
  match bind () with
  | ok -> ok
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> (
      (* A socket file can be a live daemon or a stale corpse from a
         SIGKILL.  Probe: a refused/failed connect means nobody is
         listening, so unlink and rebind; a successful one means the
         address is genuinely taken. *)
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then begin
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "%s: already serving" path)
      end
      else begin
        (try Sys.remove path with Sys_error _ -> ());
        match bind () with
        | ok -> ok
        | exception e ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            Error (Printf.sprintf "%s: %s" path (Printexc.to_string e))
      end)
  | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" path (Printexc.to_string e))

let run ?cancel ?(signals = true) ?on_ready cfg =
  match bind_listen cfg.socket_path with
  | Error msg ->
      Printf.eprintf "syno serve: %s\n%!" msg;
      2
  | Ok listen_fd ->
      let t0 = Unix.gettimeofday () in
      let cache, cache_report =
        match cfg.cache_path with
        | Some path ->
            Cache.open_file ~capacity:cfg.cache_capacity ~every:cfg.cache_every path
        | None ->
            (Cache.create ~capacity:cfg.cache_capacity (), Cache.{ or_loaded = 0; or_quarantined = None })
      in
      (match cache_report.Cache.or_quarantined with
      | Some (where, err) ->
          Printf.eprintf "syno serve: damaged cache snapshot quarantined to %s (%s)\n%!" where
            (Cache.string_of_error err)
      | None -> ());
      let corpus =
        Option.map (fun path -> fst (Corpus.open_file ~every:1 path)) cfg.corpus_path
      in
      let deps =
        {
          d_cache = cache;
          d_corpus = corpus;
          d_guard = cfg.guard;
          d_specialize = cfg.specialize;
        }
      in
      (* Three trip-wires: [work_root] preempts in-flight evaluation,
         [draining] stops admission, [stop] aborts everything (SIGINT). *)
      let work_root = Cancel.create () in
      let draining = ref false in
      let drain_started = ref 0.0 in
      let grace_fired = ref false in
      let stop = ref false in
      let start_drain () =
        if not !draining then begin
          draining := true;
          drain_started := Unix.gettimeofday ()
        end
      in
      if signals then begin
        Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> start_drain ()));
        Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
      end;
      let queue =
        Admission.create
          {
            Admission.max_depth = cfg.max_depth;
            max_bytes = cfg.max_inflight_bytes;
            retry_after = cfg.retry_after;
          }
      in
      (* Self-pipe: workers poke it after pushing to the outbox so the
         select loop wakes immediately instead of at its tick. *)
      let pipe_rd, pipe_wr = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock pipe_rd;
      Unix.set_nonblock pipe_wr;
      let outbox_mutex = Mutex.create () in
      let outbox : (int * string) Queue.t = Queue.create () in
      let wake_byte = Bytes.make 1 'w' in
      let push_response conn_id line =
        Mutex.lock outbox_mutex;
        Queue.push (conn_id, line) outbox;
        Mutex.unlock outbox_mutex;
        try ignore (Unix.write pipe_wr wake_byte 0 1) with Unix.Unix_error _ -> ()
      in
      let workers =
        Array.init (max 1 cfg.workers) (fun _ ->
            Domain.spawn (fun () ->
                let rec loop () =
                  match Admission.take queue with
                  | None -> ()
                  | Some job ->
                      let resp = handle deps job in
                      push_response job.j_conn
                        (Protocol.render_response ~id:job.j_request.Protocol.rq_id resp);
                      Admission.complete queue ~bytes:job.j_bytes;
                      loop ()
                in
                loop ()))
      in
      let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
      let next_conn = ref 0 in
      let requests = ref 0 in
      let served = ref 0 in
      let reply conn resp_line =
        Buffer.add_string conn.c_out resp_line;
        Buffer.add_char conn.c_out '\n';
        incr served
      in
      let drop_conn conn =
        (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
        Hashtbl.remove conns conn.c_id
      in
      let status_params () =
        [
          ("uptime", Printf.sprintf "%.3f" (Unix.gettimeofday () -. t0));
          ("requests", string_of_int !requests);
          ("served", string_of_int !served);
          ("draining", if !draining then "1" else "0");
          ("connections", string_of_int (Hashtbl.length conns));
          ("workers", string_of_int (Array.length workers));
          ("cache_size", string_of_int (Cache.size cache));
          ("cache_hits", string_of_int (Cache.hits cache));
          ("cache_misses", string_of_int (Cache.misses cache));
          ("cache_evictions", string_of_int (Cache.evictions cache));
          ("cache_writes", string_of_int (Cache.writes cache));
          ("cache_loaded", string_of_int cache_report.Cache.or_loaded);
          ("queue_depth", string_of_int (Admission.depth queue));
          ("in_flight", string_of_int (Admission.in_flight queue));
          ("inflight_bytes", string_of_int (Admission.inflight_bytes queue));
          ("shed", string_of_int (Admission.shed_count queue));
          ("admitted", string_of_int (Admission.admitted_count queue));
          ("corpus_size", string_of_int (match corpus with Some c -> Corpus.size c | None -> 0));
        ]
      in
      (* Dispatch one framed line.  Cheap verbs (status/ping/drain) are
         answered inline so they stay responsive under full queues —
         exactly when an operator most needs to see the gauges. *)
      let dispatch conn line =
        incr requests;
        let heuristic_id () =
          match String.split_on_char ' ' (String.trim line) with
          | id :: _ when Protocol.is_token id -> id
          | _ -> "-"
        in
        match Protocol.parse_request line with
        | Error msg ->
            reply conn (Protocol.render_response ~id:(heuristic_id ()) (bad_request msg))
        | Ok rq -> (
            let id = rq.Protocol.rq_id in
            let answer resp = reply conn (Protocol.render_response ~id resp) in
            match rq.Protocol.rq_verb with
            | Protocol.Ping -> answer (Protocol.Resp_ok [])
            | Protocol.Status -> answer (Protocol.Resp_ok (status_params ()))
            | Protocol.Drain ->
                start_drain ();
                answer (Protocol.Resp_ok [ ("draining", "1") ])
            | Protocol.Eval | Protocol.Lint | Protocol.Search ->
                if !draining then answer (error "draining" "server is draining")
                else (
                  match Protocol.float_param rq "deadline" ~default:cfg.default_deadline with
                  | Error msg -> answer (bad_request msg)
                  | Ok d when d <= 0.0 -> answer (bad_request "parameter deadline: must be > 0")
                  | Ok d -> (
                      let d = Float.min d cfg.max_deadline in
                      let abs_deadline = Unix.gettimeofday () +. d in
                      let bytes = String.length line in
                      let job =
                        {
                          j_conn = conn.c_id;
                          j_request = rq;
                          j_bytes = bytes;
                          j_deadline = abs_deadline;
                          j_token = Cancel.of_deadline ~parent:work_root abs_deadline;
                        }
                      in
                      match Admission.offer queue ~bytes job with
                      | Ok () -> conn.c_pending <- conn.c_pending + 1
                      | Error shed ->
                          answer
                            (error ~retry_after:shed.Admission.sh_retry_after "overloaded"
                               (Printf.sprintf "queue depth %d, %d bytes in flight"
                                  shed.Admission.sh_depth shed.Admission.sh_bytes)))))
      in
      let feed conn chunk n =
        Buffer.add_subbytes conn.c_in chunk 0 n;
        (* Split out every complete line; leave the partial tail. *)
        let s = Buffer.contents conn.c_in in
        let rec split start =
          match String.index_from_opt s start '\n' with
          | Some i ->
              dispatch conn (String.sub s start (i - start));
              split (i + 1)
          | None ->
              Buffer.clear conn.c_in;
              Buffer.add_substring conn.c_in s start (String.length s - start)
        in
        split 0;
        if Buffer.length conn.c_in > Protocol.max_line then begin
          (* An unterminated line past the cap is an attack or a broken
             client either way: answer once, then cut the connection. *)
          reply conn (Protocol.render_response ~id:"-" (bad_request "line too long"));
          conn.c_eof <- true;
          Buffer.clear conn.c_in
        end
      in
      let drain_outbox () =
        Mutex.lock outbox_mutex;
        let items = Queue.fold (fun acc it -> it :: acc) [] outbox in
        Queue.clear outbox;
        Mutex.unlock outbox_mutex;
        List.iter
          (fun (conn_id, line) ->
            match Hashtbl.find_opt conns conn_id with
            | Some conn ->
                conn.c_pending <- max 0 (conn.c_pending - 1);
                reply conn line
            | None -> ()  (* the client left; nothing to deliver *))
          (List.rev items)
      in
      let flush_conn conn =
        let s = Buffer.contents conn.c_out in
        if s <> "" then
          match Unix.write conn.c_fd (Bytes.of_string s) 0 (String.length s) with
          | n ->
              Buffer.clear conn.c_out;
              if n < String.length s then
                Buffer.add_substring conn.c_out s n (String.length s - n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
          | exception Unix.Unix_error _ -> drop_conn conn
      in
      let accept_all () =
        let rec go () =
          match Unix.accept ~cloexec:true listen_fd with
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              if Hashtbl.length conns >= cfg.max_connections then begin
                (* Connection-level shedding: tell the client why before
                   closing, best-effort. *)
                let line =
                  Protocol.render_response ~id:"-"
                    (error ~retry_after:cfg.retry_after "overloaded" "connection limit")
                  ^ "\n"
                in
                (try ignore (Unix.write fd (Bytes.of_string line) 0 (String.length line))
                 with Unix.Unix_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                Unix.set_nonblock fd;
                incr next_conn;
                Hashtbl.add conns !next_conn
                  {
                    c_id = !next_conn;
                    c_fd = fd;
                    c_in = Buffer.create 256;
                    c_out = Buffer.create 256;
                    c_pending = 0;
                    c_eof = false;
                  };
                go ()
              end
        in
        go ()
      in
      let read_conn conn =
        let chunk = Bytes.create 4096 in
        match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        | exception Unix.Unix_error _ -> drop_conn conn
        | 0 -> conn.c_eof <- true
        | n -> feed conn chunk n
      in
      let all_conns () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
      let buffers_empty () =
        Hashtbl.fold (fun _ c acc -> acc && Buffer.length c.c_out = 0) conns true
      in
      let outbox_empty () =
        Mutex.lock outbox_mutex;
        let e = Queue.is_empty outbox in
        Mutex.unlock outbox_mutex;
        e
      in
      let close_everything () =
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        List.iter drop_conn (all_conns ());
        (try Unix.close pipe_rd with Unix.Unix_error _ -> ());
        (try Unix.close pipe_wr with Unix.Unix_error _ -> ());
        try Sys.remove cfg.socket_path with Sys_error _ -> ()
      in
      let flush_state () =
        Cache.flush cache;
        Option.iter Corpus.flush corpus
      in
      let finish_stop () =
        Cancel.cancel ~reason:"interrupt" work_root;
        Admission.close ~discard:true queue;
        Array.iter Domain.join workers;
        flush_state ();
        close_everything ();
        130
      in
      let finish_drain () =
        Admission.close queue;
        Array.iter Domain.join workers;
        flush_state ();
        close_everything ();
        0
      in
      Option.iter (fun f -> f ()) on_ready;
      let rec loop () =
        if !stop then finish_stop ()
        else begin
          (* An external cancel is a programmatic SIGTERM. *)
          (match cancel with
          | Some c when Cancel.is_cancelled c -> start_drain ()
          | _ -> ());
          drain_outbox ();
          (* Drain is complete when no work is queued or executing, no
             response is in transit, and every byte has left our
             buffers: clients observe all their responses, then EOF. *)
          if !draining && Admission.idle queue && outbox_empty () && buffers_empty ()
          then finish_drain ()
          else begin
            if
              !draining && (not !grace_fired)
              && Unix.gettimeofday () -. !drain_started > cfg.drain_grace
            then begin
              (* Past the grace window, stuck in-flight work is cut by
                 its own cancel token; it still answers (typed
                 [cancelled]/[timeout]) before the drain completes. *)
              grace_fired := true;
              Cancel.cancel ~reason:"drain grace elapsed" work_root
            end;
            let conn_list = all_conns () in
            let reads =
              pipe_rd
              :: (if !draining then [] else [ listen_fd ])
              @ List.filter_map (fun c -> if c.c_eof then None else Some c.c_fd) conn_list
            in
            let writes =
              List.filter_map
                (fun c -> if Buffer.length c.c_out > 0 then Some c.c_fd else None)
                conn_list
            in
            (match Unix.select reads writes [] 0.05 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | readable, writable, _ ->
                if List.mem pipe_rd readable then begin
                  let buf = Bytes.create 64 in
                  let rec drain_pipe () =
                    match Unix.read pipe_rd buf 0 64 with
                    | exception Unix.Unix_error _ -> ()
                    | 0 -> ()
                    | _ -> drain_pipe ()
                  in
                  drain_pipe ()
                end;
                if List.mem listen_fd readable then accept_all ();
                List.iter
                  (fun c -> if List.mem c.c_fd readable then read_conn c)
                  conn_list;
                drain_outbox ();
                List.iter
                  (fun c ->
                    if Hashtbl.mem conns c.c_id && List.mem c.c_fd writable then flush_conn c)
                  conn_list);
            (* Retire connections whose client left and whose answers
               are all delivered. *)
            List.iter
              (fun c ->
                if
                  Hashtbl.mem conns c.c_id && c.c_eof && c.c_pending = 0
                  && Buffer.length c.c_out = 0
                then drop_conn c)
              (all_conns ());
            loop ()
          end
        end
      in
      loop ()
