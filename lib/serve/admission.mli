(** Bounded admission for the daemon's work queue.

    Backpressure instead of OOM: an open-loop client population does
    not slow down when the daemon does, so an unbounded queue grows
    until the process dies.  Admission bounds two resources — queue
    depth (requests waiting) and in-flight bytes (request payload
    admitted but not yet answered, covering both queued and executing
    work) — and {e sheds} anything beyond them with an explicit
    retry-after, which is a response the daemon can produce in
    microseconds no matter how far behind its workers are.

    The queue is a plain mutex/condition MPSC handoff between the I/O
    loop (producer) and worker domains (consumers). *)

type config = {
  max_depth : int;  (** queued (not yet executing) request bound *)
  max_bytes : int;  (** in-flight request payload bound, bytes *)
  retry_after : float;  (** seconds suggested to shed clients *)
}

val default_config : config
(** depth 64, 4 MiB in flight, retry after 0.05 s. *)

type 'a t

val create : config -> 'a t

type shed = { sh_retry_after : float; sh_depth : int; sh_bytes : int }

val offer : 'a t -> bytes:int -> 'a -> (unit, shed) result
(** Admit iff depth < [max_depth] and in-flight bytes + [bytes] <=
    [max_bytes]; otherwise shed, reporting the pressure observed.
    Admitted work holds its byte accounting until {!complete}. *)

val take : 'a t -> 'a option
(** Block until work is available; [None] once the queue is closed and
    (unless it was discarded) drained — the worker's signal to exit. *)

val complete : 'a t -> bytes:int -> unit
(** Release the byte accounting of one admitted item.  Must be called
    exactly once per admitted item, whether it succeeded, failed or
    timed out. *)

val close : ?discard:bool -> 'a t -> unit
(** Stop admitting.  With [discard] (hard stop), queued items are
    dropped; otherwise (drain) workers keep taking until the queue is
    empty.  Idempotent. *)

val depth : 'a t -> int
(** Items queued, not yet taken by a worker. *)

val in_flight : 'a t -> int
(** Items admitted, not yet {!complete}d (queued + executing). *)

val inflight_bytes : 'a t -> int
val shed_count : 'a t -> int
val admitted_count : 'a t -> int

val idle : 'a t -> bool
(** No queued and no executing work — the drain condition. *)
