(** The daemon's newline-framed wire protocol.

    One request per line, one response per line, over a Unix-domain
    stream socket.  The framing is deliberately primitive — a line of
    space-separated tokens — so a client is three syscalls in any
    language and a human can drive the daemon with [nc -U].

    {v
    request  ::= id SP verb (SP key "=" value)* NL
    response ::= id SP "ok" (SP key "=" value)* NL
               | id SP "error" SP "kind=" label SP "detail=" value
                 (SP "retry-after=" seconds)? NL
    v}

    [id] is an opaque client-chosen token echoed back verbatim, so a
    client may pipeline requests on one connection and match responses
    out of order.  Values are percent-encoded ({!encode}), which makes
    every value a single token: operator traces, lint findings and
    error details travel unambiguously inside one line. *)

type verb = Eval | Lint | Search | Status | Ping | Drain

val verb_label : verb -> string
val verb_of_label : string -> verb option

type request = {
  rq_id : string;  (** client-chosen, echoed in the response *)
  rq_verb : verb;
  rq_params : (string * string) list;  (** decoded key/value pairs *)
}

type response =
  | Resp_ok of (string * string) list
  | Resp_error of {
      err_kind : string;  (** stable label, e.g. [timeout], [overloaded] *)
      err_detail : string;
      err_retry_after : float option;
          (** seconds after which a shed request is worth retrying *)
    }

val max_line : int
(** Upper bound on one framed line (64 KiB).  The server drops
    connections that exceed it mid-line — unbounded buffering on a
    never-terminated line is an OOM vector, not a protocol error. *)

val encode : string -> string
(** Percent-encode: ['%'] and every byte outside the printable
    non-space ASCII range becomes [%XX].  Idempotent-safe inverse of
    {!decode}. *)

val decode : string -> (string, string) result

val is_token : string -> bool
(** Whether the string is safe to emit unencoded (nonempty, printable
    ASCII, no spaces, no ['=']): the requirement on ids and keys. *)

val render_request : request -> string
(** The wire line, without the trailing newline. *)

val parse_request : string -> (request, string) result

val render_response : id:string -> response -> string

val parse_response : string -> (string * response, string) result
(** Returns [(id, response)]. *)

val param : request -> string -> string option
(** Last occurrence wins, so a client can override defaults by
    appending. *)

val int_param : request -> string -> default:int -> (int, string) result
val float_param : request -> string -> default:float -> (float, string) result
(** Reject junk and non-finite values with a message naming the key. *)
