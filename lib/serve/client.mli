(** Line-oriented client for the daemon's Unix-domain socket.

    Two layers: {!send_line}/{!recv_line} for pipelined use (the bench
    load generator keeps many requests in flight on one connection and
    matches responses by id), and {!call} for the common
    one-request/one-response case.  All waiting is bounded by explicit
    timeouts — a hung daemon yields an error, never a hung client. *)

type t

val connect : ?timeout:float -> string -> (t, string) result
(** Connect to the socket at the given path, retrying (the daemon may
    still be binding) until [timeout] (default 5 s) elapses. *)

val close : t -> unit

val send_line : t -> string -> (unit, string) result
(** Write one frame (the newline is appended). *)

val recv_line : ?timeout:float -> t -> (string, string) result
(** Next complete line (without the newline), waiting up to [timeout]
    (default 10 s).  [Error "eof"] once the daemon closed the
    connection with no buffered line left. *)

val call :
  ?timeout:float -> t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and wait for the response matching its id
    (skipping any stale interleaved responses). *)
