(** The [syno serve] daemon: a Unix-domain-socket operator service.

    One long-lived process amortizes lowering, static verification and
    differential validation across every client (the ROADMAP's
    synthesize-once/reuse-forever economics), fronted by the
    robustness primitives this repo already owns:

    - every request carries a deadline riding a {!Robust.Cancel} child
      token parented on the server's work root — an overrun produces a
      typed [timeout] response, never a hung connection;
    - a bounded {!Admission} queue sheds excess load with an explicit
      [overloaded] + retry-after response once depth or in-flight
      bytes cross the limit — backpressure instead of OOM;
    - each request body runs under {!Robust.Guard}: a poisoned
      operator yields a typed error (and is distilled into the
      counterexample corpus, so replay rejects it next time) while the
      process keeps serving;
    - the result {!Cache} persists with the atomic-fsync-rename
      recipe, so a SIGKILLed daemon restarts warm;
    - SIGTERM drains gracefully (stop accepting, finish or cancel
      in-flight work by its deadline, flush, exit 0); SIGINT mirrors
      the CLI's exit-130 contract.

    Architecture: a single-threaded I/O loop owns the listening socket
    and every connection (select + non-blocking fds + a self-pipe);
    [workers] domains execute admitted requests and hand responses
    back through an outbox.  Workers never touch a socket. *)

type config = {
  socket_path : string;
  cache_path : string option;  (** [None]: in-memory cache only *)
  cache_capacity : int;
  cache_every : int;  (** puts between cache snapshots *)
  corpus_path : string option;  (** counterexample corpus to load/extend *)
  max_depth : int;  (** admission: queued-request bound *)
  max_inflight_bytes : int;  (** admission: in-flight payload bound *)
  retry_after : float;  (** hinted to shed clients, seconds *)
  default_deadline : float;  (** per-request deadline when unspecified *)
  max_deadline : float;  (** clamp on client-requested deadlines *)
  workers : int;  (** evaluation domains *)
  max_connections : int;
  drain_grace : float;
      (** seconds after drain starts before in-flight work is
          force-cancelled (it still gets a typed response) *)
  guard : Robust.Guard.policy;  (** per-request containment policy *)
  specialize : Syno.Api.specialize_mode;
      (** whether cold evaluations also time a certified specialized
          kernel ({!Syno.Api.specialize_operator}); default [`Auto].
          The measured time lands in [Cache.entry.e_spec_seconds] and
          the [spec] response parameter (negative = not specialized). *)
}

val default_config : socket:string -> config

val run :
  ?cancel:Robust.Cancel.t ->
  ?signals:bool ->
  ?on_ready:(unit -> unit) ->
  config ->
  int
(** Serve until drained or interrupted; returns the process exit code
    (0 graceful drain, 130 interrupt, 2 startup failure).  [signals]
    (default true) installs the SIGTERM/SIGINT/SIGPIPE handlers —
    disable when embedding.  [cancel] is an external drain trigger
    equivalent to SIGTERM.  [on_ready] fires once the socket is bound
    and listening. *)
