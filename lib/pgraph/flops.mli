(** Cost accounting for complete operators: FLOPs, parameter count, and
    memory footprint under a concrete valuation.

    The naive FLOP count is the product of the spatial and reduction
    loop extents (two FLOPs per multiply-accumulate); the materialized-
    reduction optimization of \u{00a7}8 (implemented in the [lower] library)
    can stage the computation to below this number. *)

val naive_flops : Graph.operator -> Shape.Valuation.t -> int
(** 2 * prod(output dims) * prod(reduction domains). *)

val params : Graph.operator -> Shape.Valuation.t -> int
(** Total weight elements across all weight groups. *)

val input_elems : Graph.operator -> Shape.Valuation.t -> int
val output_elems : Graph.operator -> Shape.Valuation.t -> int

val reduction_elems : Graph.operator -> Shape.Valuation.t -> int
(** Product of the reduction iterator domains (1 when there are none). *)

val memory_footprint : Graph.operator -> Shape.Valuation.t -> int
(** input + output + parameter elements. *)

val gather_elems : Graph.operator -> Shape.Valuation.t -> int
(** Elements of the gathered einsum operand
    ([output_elems * reduction_elems]), the dominant intermediate of
    the einsum lowering. *)

val peak_footprint : Graph.operator -> Shape.Valuation.t -> int
(** [memory_footprint + gather_elems]: a conservative peak resident
    element count valid for every lowering backend.  [Validate.Budget]
    prices exactly this number (cross-checked by [Analysis.Lint] and
    the test suite, so the two estimators cannot drift). *)

val within_budgets :
  ?max_flops:int ->
  ?max_params:int ->
  ?max_memory:int ->
  Graph.operator ->
  Shape.Valuation.t list ->
  bool
(** Budgets hold when they hold under every valuation. *)
