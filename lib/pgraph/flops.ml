module Size = Shape.Size
module Valuation = Shape.Valuation
module Ast = Coord.Ast

let prod_sizes valuation sizes =
  List.fold_left (fun acc s -> acc * Valuation.size valuation s) 1 sizes

let output_elems (op : Graph.operator) valuation =
  prod_sizes valuation op.Graph.op_output_shape

let input_elems (op : Graph.operator) valuation =
  prod_sizes valuation op.Graph.op_input_shape

let reduction_elems (op : Graph.operator) valuation =
  prod_sizes valuation (List.map (fun it -> it.Ast.dom) op.Graph.op_reductions)

(* The paper (\u{00a7}8): "the FLOPs depend only on the output iterators and
   the Reduces ... the number of iterations is their product". *)
let naive_flops (op : Graph.operator) valuation =
  2 * output_elems op valuation * reduction_elems op valuation

let params (op : Graph.operator) valuation =
  List.fold_left
    (fun acc group -> acc + prod_sizes valuation (List.map (fun it -> it.Ast.dom) group))
    0 op.Graph.op_weights

let memory_footprint op valuation =
  input_elems op valuation + output_elems op valuation + params op valuation

(* The dominant intermediate of the einsum lowering: the gathered
   operand is indexed by every output and every reduction iterator at
   once.  The staged executor materializes strictly smaller partial
   tensors, so adding this to the resident footprint gives a safe peak
   for every backend — the single number [Validate.Budget] prices. *)
let gather_elems op valuation = output_elems op valuation * reduction_elems op valuation
let peak_footprint op valuation = memory_footprint op valuation + gather_elems op valuation

let within_budgets ?max_flops ?max_params ?max_memory op valuations =
  let le limit v = match limit with None -> true | Some l -> v <= l in
  List.for_all
    (fun valuation ->
      le max_flops (naive_flops op valuation)
      && le max_params (params op valuation)
      && le max_memory (memory_footprint op valuation))
    valuations
