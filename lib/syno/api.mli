(** End-to-end Syno facade: substitute operators into backbones, model
    their latency, train them on the proxy task, and run the MCTS
    search of Algorithm 1. *)

type layer_op = { op : Pgraph.Graph.operator; valuation : Shape.Valuation.t }

val baseline_layer_op : Backbones.Convspec.t -> layer_op
(** The standard operator at this layer: dense, grouped, or depthwise
    convolution according to the spec. *)

val substituted_layer_op : Zoo.entry -> Backbones.Convspec.t -> layer_op
(** The candidate operator instantiated at this layer's shape, falling
    back to the baseline when the layer is not a substitution target
    (depthwise/grouped) or the candidate's coefficient sizes do not
    divide the layer's dimensions — mirroring the paper, which replaces
    only the standard convolutions. *)

val model_latency_ms :
  ?substitute:Zoo.entry ->
  Backbones.Models.t ->
  Perf.Compiler_model.t ->
  Perf.Platform.t ->
  float

val model_flops : ?substitute:Zoo.entry -> Backbones.Models.t -> int
(** Staged (materialized-reduction) FLOPs over all layers. *)

val model_params : ?substitute:Zoo.entry -> Backbones.Models.t -> int

val speedup :
  Zoo.entry -> Backbones.Models.t -> Perf.Compiler_model.t -> Perf.Platform.t -> float
(** Baseline latency / substituted latency. *)

(** {1 Proof-guided specialization} *)

type specialize_mode = [ `Auto | `Off | `On ]
(** Whether eval paths run the certified specialized kernel
    ({!Lower.Specialize}) instead of the interpreters: [`On] always
    (certification failure is an error), [`Off] never, [`Auto]
    specializes when a certificate exists, its verdict is not a
    violation, and its interior fraction is positive — falling back to
    the interpreters otherwise. *)

val specialize_mode_to_string : specialize_mode -> string
val specialize_mode_of_string : string -> specialize_mode option

val specialize_operator :
  ?mode:specialize_mode ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t ->
  (Lower.Specialize.t option, Robust.Guard.kind) result
(** The full proof-to-speed pipeline for one operator: compile the
    staged program, build the {!Analysis.Regions} certificate, validate
    it with {!Analysis.Certify}, and compile the specialized executor.
    [Ok None] means specialization was declined (mode [`Off], or
    [`Auto] and not profitable); [Error] carries the typed
    certification rejection (mode [`On] only — [`Auto] falls back). *)

val specialized_forward :
  ?mode:specialize_mode ->
  Pgraph.Graph.operator ->
  Shape.Valuation.t ->
  (input:Nd.Tensor.t -> weights:Nd.Tensor.t list -> Nd.Tensor.t) option
(** {!specialize_operator} as a forward closure, for
    {!Nn.Layer.of_operator}'s [?forward]; [None] whenever no
    specialized kernel is available. *)

(** {1 Accuracy evaluation on the synthetic proxy task} *)

val proxy_layer :
  ?specialize:specialize_mode ->
  Zoo.entry ->
  Nd.Rng.t ->
  Backbones.Proxy.stage_shape ->
  Nn.Layer.t
(** Compile the entry at a proxy stage shape as a trainable layer.
    [specialize] (default [`Off]) swaps the forward pass for the
    certified specialized kernel; the backward pass stays the
    reference one. *)

val train_entry :
  ?epochs:int ->
  ?lr:float ->
  ?clip_norm:float ->
  ?sentinel:Nn.Train.sentinel ->
  ?specialize:specialize_mode ->
  rng:Nd.Rng.t ->
  Zoo.entry ->
  Dataset.Synth_vision.t ->
  Nn.Train.history
(** Train the proxy backbone with the entry substituted into both
    operator stages.  [clip_norm] enables global gradient-norm
    clipping; [sentinel] (default {!Nn.Train.default_sentinel}) aborts
    on NaN/Inf loss or sustained divergence — check
    [history.Nn.Train.outcome]. *)

(** {1 Search} *)

type candidate = {
  operator : Pgraph.Graph.operator;
  signature : string;
  reward : float;
  flops : int;
  params : int;
  quarantined : bool;  (** every guarded evaluation attempt failed *)
}

type search_run = {
  candidates : candidate list;
  failures : Search.Mcts.failure_stats;
  admission : Validate.Admit.stats option;
      (** admission-gate statistics; [None] when no gate was configured *)
  corpus_stats : Validate.Corpus.stats option;
      (** counterexample-corpus statistics; [None] when no corpus was
          attached *)
}

val default_validation_valuations : Shape.Valuation.t list
(** The tiny shape differential validation runs at by default (three
    small forward passes per candidate instead of one search-sized
    one). *)

val search_conv_operators_run :
  ?iterations:int ->
  ?max_prims:int ->
  ?flops_budget_ratio:float ->
  ?domains:int ->
  ?trees:int ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  ?on_corrupt:[ `Fail | `Restart ] ->
  ?max_bytes:int ->
  ?max_flops:int ->
  ?validate:bool ->
  ?validate_config:Validate.Differential.config ->
  ?validation_valuations:Shape.Valuation.t list ->
  ?static_gate:bool ->
  ?specialize_gate:bool ->
  ?corpus:string ->
  ?corpus_readonly:bool ->
  ?cancel:Robust.Cancel.t ->
  rng:Nd.Rng.t ->
  valuations:Shape.Valuation.t list ->
  unit ->
  search_run
(** MCTS over the convolution signature
    [[N, C_out, H, W] -> [N, C_in, H, W]] with the analytic accuracy
    proxy as reward and a FLOPs budget relative to the standard
    convolution (default 1.0x).  Returns candidates sorted by reward
    (quarantined candidates last) together with per-run failure
    statistics.

    [domains] (default 1) sizes a private domain pool.  With
    [domains > 1] and no [trees], the search is single-tree parallel
    ({!Search.Mcts.search_single_tree_run}): the workers share one
    tree's statistics (virtual loss) and one reward memo, and the full
    [iterations] budget is drained jointly — more domains means faster,
    not more, search.  Passing [trees] explicitly selects root-parallel
    search with that many independent trees instead, splitting
    [iterations] evenly across them; for fixed [trees] and [rng] that
    candidate set does not depend on [domains].  With [domains = 1] and
    no (or one) tree this is the original sequential search.

    Fault tolerance: every reward call runs under [guard] (default
    {!Robust.Guard.default_policy}); [inject] enables deterministic
    fault injection; candidates whose attempts all fail are quarantined
    at [quarantine_reward] (default 0).  [checkpoint] names a file the
    reward memo is serialized to every [checkpoint_every] (default 50)
    new evaluations plus once at the end; [resume] preloads a
    previously written file (a missing file is a fresh start), so a
    killed search rerun with the same seed reproduces the uninterrupted
    results without repeating completed evaluations.  A damaged resume
    file fails with a clear error by default; [on_corrupt:`Restart]
    ignores it and starts fresh instead.

    Admission (the {!Validate} layer): [max_bytes] / [max_flops] bound
    each candidate's estimated peak intermediate bytes and FLOPs under
    [valuations] — over-budget candidates are quarantined as
    [over_budget] {e before any tensor allocation}.  [validate] runs
    every admitted candidate through all three lowering backends on
    seeded inputs at [validation_valuations]; disagreement beyond
    [validate_config]'s tolerance quarantines it as [backend_mismatch].
    Whenever a gate is configured, static bounds verification
    ({!Analysis.Verify}) runs first — interval arithmetic only, no
    tensor allocation — quarantining provably out-of-bounds gathers as
    [static_violation]; [static_gate:false] disables that stage.
    [specialize_gate] (default false) additionally requires every
    returned candidate to yield a certified specialized kernel plan
    ({!specialize_operator} with mode [`On] — pure arithmetic, no
    tensor work); candidates whose certificates fail translation
    validation are quarantined.
    Admission rejections appear in [failures.failed_attempts]; gate
    cost and per-stage rejection counts in [admission].

    [corpus] names a persistent counterexample corpus
    ({!Validate.Corpus}): candidates are replayed against its recorded
    failures {e before} any other stage (rejections surface as
    [counterexample]), and every static/differential failure is
    distilled back into it — the CEGIS loop.  A missing file is an
    empty corpus; a damaged one is quarantined aside with a warning,
    never fatal.  [corpus_readonly] replays without recording new
    entries.  Replay/distillation counts are in [corpus_stats].

    [cancel] is the shutdown token (the CLI's signal handlers trip it):
    the search stops at the next iteration boundary and {e returns} the
    candidates found so far — partial top-k plus stats — after flushing
    the checkpoint sink, so an interrupted run resumed from its
    checkpoint replays to the uninterrupted results. *)

(** {2 Sharded multi-process search}

    The paper's search runs on a fleet of workers; these entry points
    reproduce that with OS processes on one host.  The space is
    partitioned by seeded root-action signature ({!Search.Shard}), each
    shard searched by a forked worker under a crash-tolerant supervisor
    ({!Search.Coordinator}), and the per-shard checkpoints merged into
    one ranked candidate list (dedup by signature, quarantine-wins). *)

type sharded_run = {
  sh_candidates : candidate list;
      (** merged from every shard's checkpoint, ranked like
          {!search_conv_operators_run} output *)
  sh_report : Search.Coordinator.report;
      (** per-shard statuses, restart counts, merge provenance *)
  sh_corpus : Validate.Corpus.merge_report option;
      (** the per-shard corpus merge (entry dedup, damaged-file
          quarantine); [None] without a writable corpus *)
}

val search_conv_operators_sharded_run :
  ?iterations:int ->
  ?max_prims:int ->
  ?flops_budget_ratio:float ->
  ?shards:int ->
  ?workers:int ->
  ?max_restarts:int ->
  ?backoff:float ->
  ?heartbeat_timeout:float ->
  ?shard_deadline:float ->
  ?grace:float ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint_every:int ->
  ?max_bytes:int ->
  ?max_flops:int ->
  ?validate:bool ->
  ?validate_config:Validate.Differential.config ->
  ?validation_valuations:Shape.Valuation.t list ->
  ?static_gate:bool ->
  ?corpus:string ->
  ?corpus_readonly:bool ->
  ?kill_after:int ->
  ?inline:bool ->
  ?cancel:Robust.Cancel.t ->
  checkpoint_base:string ->
  seed:int ->
  valuations:Shape.Valuation.t list ->
  unit ->
  sharded_run
(** The same convolution search space as {!search_conv_operators_run},
    split into [shards] (default 2) root-action partitions and run as
    forked worker processes supervised by {!Search.Coordinator.run}.
    [iterations] (default 2000) is the {e total} budget, split evenly
    per shard; each shard derives its own RNG seed and fault-injection
    stream ({!Robust.Inject.split}) from [seed] and its id, checkpoints
    to [checkpoint_base ^ ".shard<i>"] every [checkpoint_every]
    (default 1) evaluations, and resumes from its own checkpoint when
    restarted after a crash.

    Supervision knobs map onto {!Search.Coordinator.config}:
    [workers] concurrent processes (default [shards]),
    [heartbeat_timeout] seconds of silence before a kill,
    [shard_deadline] per-attempt wall clock, [max_restarts] per shard
    with exponential [backoff], [grace] between the shutdown SIGTERM
    cascade and SIGKILL.

    [inline] (default false) runs the fork-free reference execution
    instead ({!Search.Coordinator.run_inline}): same shards, same
    seeds, same merge, sequential in this process.  The determinism
    guarantee — asserted by [bench shard] and the test suite — is that
    a forked run, {e even with workers killed and restarted
    mid-search}, produces the same merged candidate list as the inline
    run.  [kill_after] is the fault-injection hook behind that
    assertion: each shard's first forked attempt SIGKILLs itself after
    that many reward evaluations (later attempts, and inline runs, are
    unaffected).

    A shard whose checkpoint file is damaged is restarted fresh by its
    worker and quarantined-but-skipped by the merge
    ([sh_report.rp_merge.mr_quarantined]); the run never aborts for it.
    [cancel] cascades shutdown to every worker: each flushes its
    checkpoint and exits 130, and the partial shards still merge. *)

val search_conv_operators_sharded :
  ?iterations:int ->
  ?max_prims:int ->
  ?flops_budget_ratio:float ->
  ?shards:int ->
  ?workers:int ->
  ?max_restarts:int ->
  ?backoff:float ->
  ?heartbeat_timeout:float ->
  ?shard_deadline:float ->
  ?grace:float ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint_every:int ->
  ?max_bytes:int ->
  ?max_flops:int ->
  ?validate:bool ->
  ?validate_config:Validate.Differential.config ->
  ?validation_valuations:Shape.Valuation.t list ->
  ?static_gate:bool ->
  ?corpus:string ->
  ?corpus_readonly:bool ->
  ?kill_after:int ->
  ?inline:bool ->
  ?cancel:Robust.Cancel.t ->
  checkpoint_base:string ->
  seed:int ->
  valuations:Shape.Valuation.t list ->
  unit ->
  candidate list
(** [search_conv_operators_sharded_run] without the report. *)

val search_conv_operators :
  ?iterations:int ->
  ?max_prims:int ->
  ?flops_budget_ratio:float ->
  ?domains:int ->
  ?trees:int ->
  ?guard:Robust.Guard.policy ->
  ?inject:Robust.Inject.t ->
  ?quarantine_reward:float ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:string ->
  ?on_corrupt:[ `Fail | `Restart ] ->
  ?max_bytes:int ->
  ?max_flops:int ->
  ?validate:bool ->
  ?validate_config:Validate.Differential.config ->
  ?validation_valuations:Shape.Valuation.t list ->
  ?static_gate:bool ->
  ?specialize_gate:bool ->
  ?corpus:string ->
  ?corpus_readonly:bool ->
  ?cancel:Robust.Cancel.t ->
  rng:Nd.Rng.t ->
  valuations:Shape.Valuation.t list ->
  unit ->
  candidate list
(** [search_conv_operators_run] without the statistics. *)

val default_search_valuations : Shape.Valuation.t list
