module Size = Shape.Size
module Valuation = Shape.Valuation
module Graph = Pgraph.Graph
module Flops = Pgraph.Flops
module Convspec = Backbones.Convspec

type layer_op = { op : Graph.operator; valuation : Valuation.t }

(* Pick coefficient values that divide the layer's channel sizes. *)
let pick_divisor candidates n = List.find_opt (fun d -> n mod d = 0) candidates

let spec_valuation ?(g = 1) ?(s = 1) (spec : Convspec.t) =
  Zoo.Vars.conv_valuation ~n:1 ~c_in:spec.Convspec.in_channels
    ~c_out:spec.Convspec.out_channels ~hw:spec.Convspec.height
    ~k:(max 1 spec.Convspec.kernel) ~g ~s ()

let baseline_layer_op (spec : Convspec.t) =
  if spec.Convspec.groups = 1 then
    { op = Zoo.conv2d.Zoo.operator; valuation = spec_valuation spec }
  else if spec.Convspec.groups = spec.Convspec.in_channels then
    { op = Zoo.depthwise_conv.Zoo.operator; valuation = spec_valuation spec }
  else
    { op = Zoo.grouped_conv.Zoo.operator; valuation = spec_valuation ~g:spec.Convspec.groups spec }

(* An instantiation is usable if every size in the operator evaluates
   to a positive integer under the valuation. *)
let instantiable op valuation =
  match Flops.naive_flops op valuation + Flops.params op valuation with
  | (_ : int) -> true
  | exception Failure _ -> false

let substituted_layer_op entry (spec : Convspec.t) =
  if not (Convspec.substitutable spec) then baseline_layer_op spec
  else
    let g =
      Option.value ~default:1
        (pick_divisor [ 2; 4 ]
           (let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
            gcd spec.Convspec.in_channels spec.Convspec.out_channels))
    in
    let candidates =
      [
        spec_valuation ~g ~s:4 spec;
        spec_valuation ~g ~s:2 spec;
        spec_valuation ~g ~s:1 spec;
        spec_valuation ~g:1 ~s:1 spec;
      ]
    in
    let op = entry.Zoo.operator in
    match List.find_opt (fun v -> instantiable op v) candidates with
    | Some valuation -> { op; valuation }
    | None -> baseline_layer_op spec

let layer_instances ?substitute (model : Backbones.Models.t) =
  List.map
    (fun spec ->
      let { op; valuation } =
        match substitute with
        | Some entry -> substituted_layer_op entry spec
        | None -> baseline_layer_op spec
      in
      {
        Perf.Roofline.li_operator = op;
        li_valuation = valuation;
        li_count = spec.Convspec.count;
      })
    model.Backbones.Models.specs

let model_latency_ms ?substitute model compiler platform =
  Perf.Roofline.model_time_ms compiler platform (layer_instances ?substitute model)

let model_flops ?substitute model =
  List.fold_left
    (fun acc li ->
      let plan = Lower.Staging.optimize li.Perf.Roofline.li_operator li.li_valuation in
      acc + (plan.Lower.Staging.total_flops * li.li_count))
    0
    (layer_instances ?substitute model)

let model_params ?substitute model =
  List.fold_left
    (fun acc li ->
      acc + (Flops.params li.Perf.Roofline.li_operator li.li_valuation * li.li_count))
    0
    (layer_instances ?substitute model)

let speedup entry model compiler platform =
  model_latency_ms model compiler platform
  /. model_latency_ms ~substitute:entry model compiler platform

(* --- Proof-guided specialization ------------------------------------------ *)

type specialize_mode = [ `Auto | `Off | `On ]

let specialize_mode_to_string = function `Auto -> "auto" | `Off -> "off" | `On -> "on"

let specialize_mode_of_string = function
  | "auto" -> Some `Auto
  | "off" -> Some `Off
  | "on" -> Some `On
  | _ -> None

let specialize_operator ?(mode = `Auto) op valuation =
  match mode with
  | `Off -> Ok None
  | (`Auto | `On) as mode -> (
      let staged = Lower.Staged_exec.compile op valuation in
      let cert = Analysis.Regions.of_staged staged in
      let auto_skip =
        mode = `Auto
        && (cert.Analysis.Regions.rc_interior_fraction = 0.0
           ||
           match cert.Analysis.Regions.rc_verdict with
           | Analysis.Verify.Violation _ -> true
           | Analysis.Verify.Proved | Analysis.Verify.Padded _ -> false)
      in
      if auto_skip then Ok None
      else
        match Analysis.Certify.compile staged cert.Analysis.Regions.rc_plan with
        | Ok sp -> Ok (Some sp)
        | Error _ when mode = `Auto -> Ok None
        | Error e -> Error e)

let specialized_forward ?mode op valuation =
  match specialize_operator ?mode op valuation with
  | Ok (Some sp) ->
      Some (fun ~input ~weights -> Lower.Specialize.forward sp ~input ~weights)
  | Ok None | Error _ -> None

(* --- Proxy training ------------------------------------------------------ *)

let proxy_batch_size = 16

let proxy_layer ?(specialize = `Off) entry rng (stage : Backbones.Proxy.stage_shape) =
  let valuation =
    Zoo.Vars.conv_valuation ~n:proxy_batch_size ~c_in:stage.Backbones.Proxy.in_ch
      ~c_out:stage.Backbones.Proxy.out_ch ~hw:stage.Backbones.Proxy.hw ~k:3 ~g:2 ~s:2 ()
  in
  let compiled = Lower.Reference.compile entry.Zoo.operator valuation in
  let forward = specialized_forward ~mode:specialize entry.Zoo.operator valuation in
  Nn.Layer.of_operator ?forward rng ~name:entry.Zoo.name compiled

let train_entry ?(epochs = 8) ?(lr = 0.1) ?clip_norm ?sentinel ?specialize ~rng entry
    (data : Dataset.Synth_vision.t) =
  let model =
    Backbones.Proxy.vision_model rng
      ~make_op:(fun rng stage -> proxy_layer ?specialize entry rng stage)
      ~in_channels:data.Dataset.Synth_vision.channels ~channels:8
      ~classes:data.Dataset.Synth_vision.classes
      ~size:data.Dataset.Synth_vision.size ()
  in
  let opt = Nn.Optimizer.sgd ~momentum:0.9 ~weight_decay:1e-4 ~lr () in
  Nn.Train.fit ?clip_norm ?sentinel model opt ~epochs ~train:data.Dataset.Synth_vision.train
    ~eval:data.Dataset.Synth_vision.eval

(* --- Search --------------------------------------------------------------- *)

type candidate = {
  operator : Graph.operator;
  signature : string;
  reward : float;
  flops : int;
  params : int;
  quarantined : bool;
}

let default_search_valuations =
  [
    Zoo.Vars.conv_valuation ~n:1 ~c_in:16 ~c_out:16 ~hw:16 ~k:3 ~g:2 ~s:2 ();
    Zoo.Vars.conv_valuation ~n:1 ~c_in:32 ~c_out:64 ~hw:8 ~k:3 ~g:2 ~s:2 ();
  ]

type search_run = {
  candidates : candidate list;
  failures : Search.Mcts.failure_stats;
  admission : Validate.Admit.stats option;
  corpus_stats : Validate.Corpus.stats option;
}

(* A small shape at which differential validation is cheap: three tiny
   forward passes instead of one search-sized one. *)
let default_validation_valuations =
  [ Zoo.Vars.conv_valuation ~n:1 ~c_in:8 ~c_out:8 ~hw:4 ~k:3 ~g:2 ~s:2 () ]

let load_resume ?(on_corrupt = `Fail) path =
  if not (Sys.file_exists path) then []
  else
    match Search.Checkpoint.load_result ~path with
    | Ok entries -> entries
    | Error err -> (
        match on_corrupt with
        | `Restart -> []
        | `Fail ->
            failwith
              (Printf.sprintf "cannot resume from %s: %s" path
                 (Search.Checkpoint.string_of_error err)))

(* The convolution search space of the paper's evaluation: enumeration
   config and analytic proxy reward for the signature
   [[N, C_out, H, W] -> [N, C_in, H, W]] with a FLOPs budget relative to
   the standard convolution.  Shared between the in-process and the
   sharded multi-process entry points, so every worker sees the exact
   same space. *)
let conv_search_space ~max_prims ~flops_budget_ratio ~valuations =
  let open Zoo.Vars in
  let sz = Size.of_var in
  let output_shape = [ sz n; sz c_out; sz h; sz w ] in
  let desired_shape = [ sz n; sz c_in; sz h; sz w ] in
  let conv_flops =
    List.fold_left
      (fun acc v -> max acc (Flops.naive_flops Zoo.conv2d.Zoo.operator v))
      0 valuations
  in
  let budget = int_of_float (flops_budget_ratio *. float_of_int conv_flops) in
  let base = Search.Enumerate.default_config ~output_shape ~desired_shape ~valuations () in
  let cfg =
    {
      base with
      Search.Enumerate.max_prims;
      coefficient_candidates = [ sz k; sz s; sz g ];
      reduce_candidates =
        [
          sz c_in;
          Size.mul (Size.var_pow g (-1)) (sz c_in);
          Size.mul (Size.var_pow g (-1)) (Size.mul (Size.var_pow s (-1)) (sz c_out));
          Size.mul (Size.var_pow s (-1)) (sz c_out);
          sz k;
        ];
      max_flops = Some budget;
      frozen_sizes = [ sz n ];
    }
  in
  (* The analytic proxy reward is fast per call, so the per-valuation
     boundary is poll enough; the token still reaches real training
     rewards that want finer-grained polls. *)
  let reward ~cancel:(token : Robust.Cancel.t) op =
    let r =
      List.fold_left
        (fun acc v ->
          Robust.Cancel.check token;
          acc +. Search.Reward.score ~flops_budget:budget op v)
        0.0 valuations
    in
    r /. float_of_int (max 1 (List.length valuations))
  in
  (cfg, reward)

let conv_gate ?corpus ~validate ~validate_config ~validation_valuations ~static_gate
    ~max_bytes ~max_flops ~valuations () =
  let differential = if validate then Some validate_config else None in
  (* The static verifier is free of tensor work, so it defaults on —
     but only bother building a gate when something else asked for
     admission, keeping gate-less runs gate-less.  An attached corpus
     counts: replay can reject on its own. *)
  if max_bytes = None && max_flops = None && differential = None && corpus = None then None
  else
    let static = if static_gate then validation_valuations else [] in
    Some
      (Validate.Admit.create ?corpus ~static ?max_bytes ?max_flops ~valuations ?differential
         ~check_valuations:validation_valuations ())

(* Open (or skip) the counterexample corpus for one search process.  A
   damaged file is quarantined by {!Validate.Corpus.open_file}; surface
   that on stderr — the run itself must never die for it. *)
let open_corpus ?(readonly = false) path =
  let t, report = Validate.Corpus.open_file ~readonly path in
  (match report.Validate.Corpus.or_quarantined with
  | Some (qpath, err) ->
      Printf.eprintf "syno: warning: damaged corpus %s quarantined to %s (%s)\n%!" path qpath
        (Validate.Corpus.string_of_error err)
  | None -> ());
  t

let search_conv_operators_run ?(iterations = 2000) ?(max_prims = 9)
    ?(flops_budget_ratio = 1.0) ?(domains = 1) ?trees ?guard ?inject ?quarantine_reward
    ?checkpoint ?(checkpoint_every = 50) ?resume ?(on_corrupt = `Fail) ?max_bytes ?max_flops
    ?(validate = false) ?(validate_config = Validate.Differential.default_config)
    ?(validation_valuations = default_validation_valuations) ?(static_gate = true)
    ?(specialize_gate = false) ?corpus ?(corpus_readonly = false) ?cancel ~rng ~valuations
    () =
  let cfg, reward = conv_search_space ~max_prims ~flops_budget_ratio ~valuations in
  let sink =
    Option.map (fun path -> Search.Checkpoint.sink ~path ~every:checkpoint_every ()) checkpoint
  in
  let resume = match resume with Some path -> load_resume ~on_corrupt path | None -> [] in
  (* Preload the sink with the resumed entries so every snapshot a
     resumed run writes still carries the full history — without this, a
     second kill/resume cycle would silently shrink the memo. *)
  (match sink with Some s -> Search.Checkpoint.preload s resume | None -> ());
  let corpus_t = Option.map (open_corpus ~readonly:corpus_readonly) corpus in
  let gate =
    conv_gate ?corpus:corpus_t ~validate ~validate_config ~validation_valuations ~static_gate
      ~max_bytes ~max_flops ~valuations ()
  in
  let admit = Option.map (fun g op -> Validate.Admit.gate g op) gate in
  let run =
    match trees with
    | None when domains > 1 ->
        (* Single-tree parallel: [domains] workers share one tree (with
           virtual loss) and one reward memo, draining the full
           iteration budget together — more domains means faster, not
           more, search. *)
        let mcts_cfg = Search.Mcts.default_config ~iterations () in
        Par.Pool.with_pool ~domains (fun pool ->
            Search.Mcts.search_single_tree_run ~config:mcts_cfg ~pool ?guard ?inject
              ?quarantine_reward ?checkpoint:sink ~resume ?admit ?cancel cfg ~reward ~rng ())
    | None ->
        let mcts_cfg = Search.Mcts.default_config ~iterations () in
        Search.Mcts.search_run ~config:mcts_cfg ?guard ?inject ?quarantine_reward
          ?checkpoint:sink ~resume ?admit ?cancel cfg ~reward ~rng ()
    | Some t when max 1 t = 1 && domains <= 1 ->
        let mcts_cfg = Search.Mcts.default_config ~iterations () in
        Search.Mcts.search_run ~config:mcts_cfg ?guard ?inject ?quarantine_reward
          ?checkpoint:sink ~resume ?admit ?cancel cfg ~reward ~rng ()
    | Some t ->
        (* Root-parallel (explicit [trees]): the iteration budget is
           split across the trees so the candidate set depends only on
           [trees] and [rng], never on [domains]. *)
        let trees = max 1 t in
        let mcts_cfg =
          Search.Mcts.default_config ~iterations:(max 1 (iterations / trees)) ()
        in
        Par.Pool.with_pool ~domains (fun pool ->
            Search.Mcts.search_parallel_run ~config:mcts_cfg ~pool ?guard ?inject
              ?quarantine_reward ?checkpoint:sink ~resume ?admit ?cancel ~trees cfg ~reward
              ~rng ())
  in
  let v0 = List.hd valuations in
  let candidates =
    List.map
      (fun (r : Search.Mcts.result) ->
        {
          operator = r.Search.Mcts.operator;
          signature = Graph.operator_signature r.Search.Mcts.operator;
          reward = r.Search.Mcts.reward;
          flops = Flops.naive_flops r.Search.Mcts.operator v0;
          params = Flops.params r.Search.Mcts.operator v0;
          quarantined = r.Search.Mcts.quarantined;
        })
      run.Search.Mcts.results
  in
  (* With the specialize gate on, every returned candidate must also
     yield a certified kernel plan (pure arithmetic — no tensor work):
     a candidate whose certificate fails translation validation is
     quarantined rather than handed to a consumer that would specialize
     it later. *)
  let candidates =
    if not specialize_gate then candidates
    else
      List.map
        (fun c ->
          if c.quarantined then c
          else
            match specialize_operator ~mode:`On c.operator v0 with
            | Ok _ -> c
            | Error _ | (exception Failure _) -> { c with quarantined = true })
        candidates
  in
  (* Flush so short runs that never hit the add cadence still persist
     their distilled counterexamples. *)
  Option.iter Validate.Corpus.flush corpus_t;
  {
    candidates;
    failures = run.Search.Mcts.stats;
    admission = Option.map Validate.Admit.stats gate;
    corpus_stats = Option.map Validate.Corpus.stats corpus_t;
  }

let search_conv_operators ?iterations ?max_prims ?flops_budget_ratio ?domains ?trees ?guard
    ?inject ?quarantine_reward ?checkpoint ?checkpoint_every ?resume ?on_corrupt ?max_bytes
    ?max_flops ?validate ?validate_config ?validation_valuations ?static_gate
    ?specialize_gate ?corpus ?corpus_readonly ?cancel ~rng ~valuations () =
  (search_conv_operators_run ?iterations ?max_prims ?flops_budget_ratio ?domains ?trees
     ?guard ?inject ?quarantine_reward ?checkpoint ?checkpoint_every ?resume ?on_corrupt
     ?max_bytes ?max_flops ?validate ?validate_config ?validation_valuations ?static_gate
     ?specialize_gate ?corpus ?corpus_readonly ?cancel ~rng ~valuations ())
    .candidates

(* --- Sharded multi-process search ----------------------------------------- *)

type sharded_run = {
  sh_candidates : candidate list;
  sh_report : Search.Coordinator.report;
  sh_corpus : Validate.Corpus.merge_report option;
}

let search_conv_operators_sharded_run ?(iterations = 2000) ?(max_prims = 9)
    ?(flops_budget_ratio = 1.0) ?(shards = 2) ?workers ?max_restarts ?backoff
    ?heartbeat_timeout ?shard_deadline ?grace ?guard ?inject ?quarantine_reward
    ?(checkpoint_every = 1) ?max_bytes ?max_flops ?(validate = false)
    ?(validate_config = Validate.Differential.default_config)
    ?(validation_valuations = default_validation_valuations) ?(static_gate = true) ?corpus
    ?(corpus_readonly = false) ?kill_after ?(inline = false) ?cancel ~checkpoint_base ~seed
    ~valuations () =
  let cfg, space_reward = conv_search_space ~max_prims ~flops_budget_ratio ~valuations in
  let shards = max 1 shards in
  let per_shard_iterations = max 1 (iterations / shards) in
  let base_cc = Search.Coordinator.default_config ~shards () in
  let coord_config =
    {
      base_cc with
      Search.Coordinator.workers = Option.value ~default:base_cc.Search.Coordinator.workers workers;
      max_restarts = Option.value ~default:base_cc.Search.Coordinator.max_restarts max_restarts;
      backoff = Option.value ~default:base_cc.Search.Coordinator.backoff backoff;
      heartbeat_timeout =
        Option.value ~default:base_cc.Search.Coordinator.heartbeat_timeout heartbeat_timeout;
      shard_deadline;
      grace = Option.value ~default:base_cc.Search.Coordinator.grace grace;
    }
  in
  let body (ctx : Search.Coordinator.ctx) =
    let a = ctx.Search.Coordinator.assignment in
    (* Everything a shard does is a pure function of (seed, shard_id)
       and its own checkpoint — the determinism guarantee rests on it. *)
    let rng =
      Nd.Rng.create ~seed:(Search.Shard.derive_seed ~seed ~shard_id:a.Search.Shard.shard_id)
    in
    let inject =
      Option.map (fun i -> Robust.Inject.split i ~index:a.Search.Shard.shard_id) inject
    in
    let sink = Search.Checkpoint.sink ~path:a.Search.Shard.path ~every:checkpoint_every () in
    (* A damaged shard checkpoint restarts that shard from scratch; the
       coordinator-side merge separately quarantines damaged files. *)
    let resume = load_resume ~on_corrupt:`Restart a.Search.Shard.path in
    Search.Checkpoint.preload sink resume;
    (* Each shard owns a private corpus file (resumed across restarts,
       merged by the parent afterwards, exactly like checkpoints); a
       readonly corpus is shared verbatim since nobody writes it.
       Pre-existing main-corpus entries seed every shard so the fleet
       starts as hard as the last run ended. *)
    let corpus_t =
      match corpus with
      | None -> None
      | Some base when corpus_readonly -> Some (open_corpus ~readonly:true base)
      | Some base ->
          let t =
            open_corpus
              (Validate.Corpus.shard_path ~base ~shard_id:a.Search.Shard.shard_id)
          in
          (match Validate.Corpus.load_result ~path:base with
          | Ok entries -> Validate.Corpus.preload t entries
          | Error _ -> ());
          Some t
    in
    let gate =
      conv_gate ?corpus:corpus_t ~validate ~validate_config ~validation_valuations
        ~static_gate ~max_bytes ~max_flops ~valuations ()
    in
    let admit = Option.map (fun g op -> Validate.Admit.gate g op) gate in
    let evals = ref 0 in
    let reward ~cancel op =
      ctx.Search.Coordinator.beat ();
      incr evals;
      (match kill_after with
      | Some k when ctx.Search.Coordinator.forked && ctx.Search.Coordinator.attempt = 0 ->
          if !evals > k then Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ());
      space_reward ~cancel op
    in
    let mcts_cfg = Search.Mcts.default_config ~iterations:per_shard_iterations () in
    let (_ : Search.Mcts.run) =
      Search.Mcts.search_run ~config:mcts_cfg ?guard ?inject ?quarantine_reward
        ~checkpoint:sink ~resume ?admit ~cancel:ctx.Search.Coordinator.cancel
        ~root_filter:(Search.Shard.root_filter a) cfg ~reward ~rng ()
    in
    Option.iter Validate.Corpus.flush corpus_t
  in
  let runner = if inline then Search.Coordinator.run_inline else Search.Coordinator.run in
  let report = runner ~config:coord_config ?cancel ~base:checkpoint_base ~seed ~body () in
  (* Merge the per-shard corpora into the main corpus file: dedup by
     entry identity, damaged shard files quarantined — the same recipe
     as the checkpoint merge.  Pre-existing main entries survive. *)
  let corpus_merge =
    match corpus with
    | Some base when not corpus_readonly ->
        let mr = Validate.Corpus.load_and_merge ~base ~shards in
        let acc = Validate.Corpus.in_memory () in
        (match Validate.Corpus.load_result ~path:base with
        | Ok entries -> Validate.Corpus.preload acc entries
        | Error _ -> ());
        ignore (Validate.Corpus.merge_into acc mr.Validate.Corpus.mr_entries : int);
        let merged = Validate.Corpus.entries acc in
        Validate.Corpus.save ~path:base merged;
        Some { mr with Validate.Corpus.mr_entries = merged }
    | Some _ | None -> None
  in
  let v0 = List.hd valuations in
  let candidates =
    List.map
      (fun (e : Search.Checkpoint.entry) ->
        {
          operator = e.Search.Checkpoint.operator;
          signature = e.Search.Checkpoint.signature;
          reward = e.Search.Checkpoint.reward;
          flops = Flops.naive_flops e.Search.Checkpoint.operator v0;
          params = Flops.params e.Search.Checkpoint.operator v0;
          quarantined = e.Search.Checkpoint.quarantined;
        })
      (Search.Shard.rank report.Search.Coordinator.rp_merge.Search.Shard.mr_entries)
  in
  { sh_candidates = candidates; sh_report = report; sh_corpus = corpus_merge }

let search_conv_operators_sharded ?iterations ?max_prims ?flops_budget_ratio ?shards
    ?workers ?max_restarts ?backoff ?heartbeat_timeout ?shard_deadline ?grace ?guard ?inject
    ?quarantine_reward ?checkpoint_every ?max_bytes ?max_flops ?validate ?validate_config
    ?validation_valuations ?static_gate ?corpus ?corpus_readonly ?kill_after ?inline ?cancel
    ~checkpoint_base ~seed ~valuations () =
  (search_conv_operators_sharded_run ?iterations ?max_prims ?flops_budget_ratio ?shards
     ?workers ?max_restarts ?backoff ?heartbeat_timeout ?shard_deadline ?grace ?guard
     ?inject ?quarantine_reward ?checkpoint_every ?max_bytes ?max_flops ?validate
     ?validate_config ?validation_valuations ?static_gate ?corpus ?corpus_readonly
     ?kill_after ?inline ?cancel ~checkpoint_base ~seed ~valuations ())
    .sh_candidates
